// Blink with several monitored prefixes: attacks and failures on one
// prefix never leak into another (per-prefix state isolation).
#include <gtest/gtest.h>

#include "blink/blink_node.hpp"

namespace intox::blink {
namespace {

using net::Ipv4Addr;
using net::Prefix;

const Prefix kAlpha{Ipv4Addr{10, 0, 0, 0}, 8};
const Prefix kBeta{Ipv4Addr{20, 0, 0, 0}, 8};

BlinkConfig tiny() {
  BlinkConfig c;
  c.cells = 8;
  return c;
}

net::Packet pkt(const Prefix& prefix, std::uint16_t port, std::uint32_t seq) {
  net::Packet p;
  p.src = Ipv4Addr{1, 2, 3, 4};
  p.dst = Ipv4Addr{prefix.addr().value() | 9};
  net::TcpHeader t;
  t.src_port = port;
  t.dst_port = 80;
  t.seq = seq;
  p.l4 = t;
  p.payload_bytes = 64;
  return p;
}

int feed(BlinkNode& node, const net::Packet& p, sim::Time now) {
  dataplane::PipelineMetadata meta;
  meta.egress_port = -1;
  node.process(p, meta, now);
  return meta.egress_port;
}

void attack_prefix(BlinkNode& node, const Prefix& prefix, sim::Time t) {
  for (std::uint16_t i = 0; i < 32; ++i) {
    feed(node, pkt(prefix, static_cast<std::uint16_t>(1000 + i), 5), t);
  }
  for (std::uint16_t i = 0; i < 32; ++i) {
    feed(node, pkt(prefix, static_cast<std::uint16_t>(1000 + i), 5),
         t + sim::millis(100));
  }
}

TEST(BlinkMultiPrefix, IndependentSteering) {
  BlinkNode node{tiny()};
  node.monitor_prefix(kAlpha, 1, 2);
  node.monitor_prefix(kBeta, 3, 4);
  EXPECT_EQ(feed(node, pkt(kAlpha, 999, 1), 0), 1);
  EXPECT_EQ(feed(node, pkt(kBeta, 999, 1), 0), 3);
}

TEST(BlinkMultiPrefix, AttackOnOnePrefixDoesNotRerouteTheOther) {
  BlinkNode node{tiny()};
  node.monitor_prefix(kAlpha, 1, 2);
  node.monitor_prefix(kBeta, 3, 4);
  attack_prefix(node, kAlpha, sim::seconds(1));
  EXPECT_TRUE(node.is_rerouted(kAlpha));
  EXPECT_FALSE(node.is_rerouted(kBeta));
  EXPECT_EQ(feed(node, pkt(kAlpha, 999, 1), sim::seconds(2)), 2);  // backup
  EXPECT_EQ(feed(node, pkt(kBeta, 999, 1), sim::seconds(2)), 3);   // primary
}

TEST(BlinkMultiPrefix, SelectorsAreDistinct) {
  BlinkNode node{tiny()};
  node.monitor_prefix(kAlpha, 1, 2);
  node.monitor_prefix(kBeta, 3, 4);
  feed(node, pkt(kAlpha, 1000, 1), 0);
  EXPECT_EQ(node.selector(kAlpha)->occupied_count(), 1u);
  EXPECT_EQ(node.selector(kBeta)->occupied_count(), 0u);
}

TEST(BlinkMultiPrefix, BothPrefixesCanBeAttackedSeparately) {
  BlinkNode node{tiny()};
  node.monitor_prefix(kAlpha, 1, 2);
  node.monitor_prefix(kBeta, 3, 4);
  attack_prefix(node, kAlpha, sim::seconds(1));
  attack_prefix(node, kBeta, sim::seconds(5));
  EXPECT_EQ(node.reroutes().size(), 2u);
  EXPECT_TRUE(node.is_rerouted(kAlpha));
  EXPECT_TRUE(node.is_rerouted(kBeta));
}

TEST(BlinkMultiPrefix, MoreSpecificPrefixWinsLpm) {
  BlinkNode node{tiny()};
  const Prefix wide{Ipv4Addr{10, 0, 0, 0}, 8};
  const Prefix narrow{Ipv4Addr{10, 1, 0, 0}, 16};
  node.monitor_prefix(wide, 1, 2);
  node.monitor_prefix(narrow, 3, 4);
  net::Packet inside = pkt(narrow, 999, 1);
  inside.dst = Ipv4Addr{10, 1, 2, 3};
  EXPECT_EQ(feed(node, inside, 0), 3);
  net::Packet outside = pkt(wide, 999, 1);
  outside.dst = Ipv4Addr{10, 9, 2, 3};
  EXPECT_EQ(feed(node, outside, 0), 1);
}

}  // namespace
}  // namespace intox::blink
