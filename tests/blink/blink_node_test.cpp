#include "blink/blink_node.hpp"

#include <gtest/gtest.h>

namespace intox::blink {
namespace {

using net::Ipv4Addr;
using net::Prefix;

constexpr Prefix kVictim{Ipv4Addr{10, 0, 0, 0}, 8};

BlinkConfig tiny_config() {
  BlinkConfig c;
  c.cells = 8;  // majority = 4 flows: easy to drive by hand
  return c;
}

net::Packet tcp_pkt(std::uint16_t src_port, std::uint32_t seq,
                    std::uint64_t tag = 0, bool fin = false) {
  net::Packet p;
  p.src = Ipv4Addr{1, 2, 3, 4};
  p.dst = Ipv4Addr{10, 0, 0, 1};
  net::TcpHeader t;
  t.src_port = src_port;
  t.dst_port = 80;
  t.seq = seq;
  t.fin = fin;
  p.l4 = t;
  p.payload_bytes = 100;
  p.flow_tag = tag;
  return p;
}

// Feeds a packet and returns the chosen egress port.
int feed(BlinkNode& node, const net::Packet& p, sim::Time now) {
  dataplane::PipelineMetadata meta;
  meta.egress_port = -1;
  node.process(p, meta, now);
  return meta.egress_port;
}

// Drives enough distinct retransmitting flows through the node to cross
// the failure threshold. Returns the ports observed.
void drive_majority_retransmissions(BlinkNode& node, sim::Time t) {
  // 32 distinct flows (well above 8 cells) each send a segment and then a
  // duplicate: every occupied cell sees a retransmission within the window.
  for (std::uint16_t i = 0; i < 32; ++i) {
    feed(node, tcp_pkt(static_cast<std::uint16_t>(1000 + i), 5), t);
  }
  for (std::uint16_t i = 0; i < 32; ++i) {
    feed(node, tcp_pkt(static_cast<std::uint16_t>(1000 + i), 5),
         t + sim::millis(100));
  }
}

TEST(BlinkNode, SteersMonitoredPrefixToPrimaryWhenHealthy) {
  BlinkNode node{tiny_config()};
  node.monitor_prefix(kVictim, 3, 7);
  EXPECT_EQ(feed(node, tcp_pkt(1000, 1), 0), 3);
  EXPECT_FALSE(node.is_rerouted(kVictim));
}

TEST(BlinkNode, IgnoresUnmonitoredPrefixes) {
  BlinkNode node{tiny_config()};
  node.monitor_prefix(kVictim, 3, 7);
  net::Packet p = tcp_pkt(1000, 1);
  p.dst = Ipv4Addr{99, 0, 0, 1};
  EXPECT_EQ(feed(node, p, 0), -1);  // untouched
}

TEST(BlinkNode, MajorityRetransmissionsTriggerReroute) {
  BlinkNode node{tiny_config()};
  node.monitor_prefix(kVictim, 3, 7);
  drive_majority_retransmissions(node, sim::seconds(1));
  ASSERT_EQ(node.reroutes().size(), 1u);
  EXPECT_TRUE(node.is_rerouted(kVictim));
  EXPECT_EQ(node.reroutes()[0].prefix, kVictim);
  // Subsequent traffic takes the backup port.
  EXPECT_EQ(feed(node, tcp_pkt(4000, 1), sim::seconds(2)), 7);
}

TEST(BlinkNode, FewRetransmissionsDoNotTrigger) {
  BlinkNode node{tiny_config()};
  node.monitor_prefix(kVictim, 3, 7);
  // Two flows retransmitting (need >= 4 of 8 cells).
  for (std::uint16_t i = 0; i < 2; ++i) {
    feed(node, tcp_pkt(static_cast<std::uint16_t>(1000 + i), 5), 0);
    feed(node, tcp_pkt(static_cast<std::uint16_t>(1000 + i), 5),
         sim::millis(10));
  }
  EXPECT_TRUE(node.reroutes().empty());
  EXPECT_FALSE(node.is_rerouted(kVictim));
}

TEST(BlinkNode, RetransmissionsSpreadBeyondWindowDoNotTrigger) {
  BlinkNode node{tiny_config()};
  node.monitor_prefix(kVictim, 3, 7);
  // Each flow retransmits, but 1 s apart — never 4 within one 800 ms window.
  sim::Time t = sim::seconds(1);
  for (std::uint16_t i = 0; i < 32; ++i) {
    feed(node, tcp_pkt(static_cast<std::uint16_t>(1000 + i), 5), t);
    feed(node, tcp_pkt(static_cast<std::uint16_t>(1000 + i), 5),
         t + sim::millis(10));
    t += sim::seconds(1);
  }
  EXPECT_TRUE(node.reroutes().empty());
}

TEST(BlinkNode, GuardCanVetoReroute) {
  BlinkNode node{tiny_config()};
  node.monitor_prefix(kVictim, 3, 7);
  node.set_reroute_guard(
      [](const Prefix&, const FlowSelector&, sim::Time) { return false; });
  drive_majority_retransmissions(node, sim::seconds(1));
  EXPECT_TRUE(node.reroutes().empty());
  EXPECT_FALSE(node.is_rerouted(kVictim));
  EXPECT_EQ(node.vetoed(), 1u);
}

TEST(BlinkNode, RestoreReturnsToPrimary) {
  BlinkNode node{tiny_config()};
  node.monitor_prefix(kVictim, 3, 7);
  drive_majority_retransmissions(node, sim::seconds(1));
  ASSERT_TRUE(node.is_rerouted(kVictim));
  node.restore(kVictim);
  EXPECT_EQ(feed(node, tcp_pkt(4000, 1), sim::seconds(30)), 3);
}

TEST(BlinkNode, SampleResetClearsSelector) {
  auto cfg = tiny_config();
  cfg.sample_reset_period = sim::seconds(10);
  BlinkNode node{cfg};
  node.monitor_prefix(kVictim, 3, 7);
  feed(node, tcp_pkt(1000, 1, /*tag=*/5), 0);
  ASSERT_EQ(node.selector(kVictim)->occupied_count(), 1u);
  // A packet arriving after the reset period triggers the reset first.
  feed(node, tcp_pkt(2000, 1, /*tag=*/6), sim::seconds(11));
  // Old occupant gone; the triggering packet's flow was sampled fresh.
  EXPECT_EQ(node.selector(kVictim)->count_tagged(
                [](std::uint64_t t) { return t == 5; }),
            0u);
  EXPECT_EQ(node.selector(kVictim)->count_tagged(
                [](std::uint64_t t) { return t == 6; }),
            1u);
}

TEST(BlinkNode, OnRerouteCallbackFires) {
  BlinkNode node{tiny_config()};
  node.monitor_prefix(kVictim, 3, 7);
  int fired = 0;
  node.set_on_reroute([&](const RerouteEvent& e) {
    ++fired;
    EXPECT_GE(e.retransmitting_cells, 4u);
  });
  drive_majority_retransmissions(node, sim::seconds(1));
  EXPECT_EQ(fired, 1);
}

TEST(BlinkNode, NonTcpTrafficStillSteeredButNotMonitored) {
  BlinkNode node{tiny_config()};
  node.monitor_prefix(kVictim, 3, 7);
  net::Packet p;
  p.src = Ipv4Addr{1, 2, 3, 4};
  p.dst = Ipv4Addr{10, 0, 0, 1};
  p.l4 = net::UdpHeader{1000, 53};
  EXPECT_EQ(feed(node, p, 0), 3);
  EXPECT_EQ(node.selector(kVictim)->occupied_count(), 0u);
}

}  // namespace
}  // namespace intox::blink
