#include "blink/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace intox::blink {
namespace {

TEST(Analysis, CellProbabilityMatchesPaperFormula) {
  // p = 1 - (1 - qm)^(t/tR), the formula printed in §3.1.
  const double p = cell_malicious_probability(0.0525, 510.0, 8.37);
  EXPECT_NEAR(p, 1.0 - std::pow(0.9475, 510.0 / 8.37), 1e-12);
  EXPECT_GT(p, 0.95);  // by the end of the budget nearly every cell falls
}

TEST(Analysis, CellProbabilityEdgeCases) {
  EXPECT_DOUBLE_EQ(cell_malicious_probability(0.0, 100.0, 8.37), 0.0);
  EXPECT_DOUBLE_EQ(cell_malicious_probability(0.5, 0.0, 8.37), 0.0);
  EXPECT_DOUBLE_EQ(cell_malicious_probability(1.0, 1.0, 8.37), 1.0);
}

TEST(Analysis, CellProbabilityMonotonicInTimeAndQm) {
  double prev = 0.0;
  for (double t = 10.0; t <= 500.0; t += 10.0) {
    const double p = cell_malicious_probability(0.05, t, 8.37);
    EXPECT_GT(p, prev);
    prev = p;
  }
  EXPECT_LT(cell_malicious_probability(0.01, 100.0, 8.37),
            cell_malicious_probability(0.10, 100.0, 8.37));
}

TEST(Analysis, BinomialCdfBasics) {
  EXPECT_DOUBLE_EQ(binomial_cdf(10, 0.5, 10), 1.0);
  EXPECT_NEAR(binomial_cdf(10, 0.5, 4), 0.376953125, 1e-9);
  EXPECT_NEAR(binomial_cdf(1, 0.3, 0), 0.7, 1e-12);
  EXPECT_DOUBLE_EQ(binomial_cdf(5, 0.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_cdf(5, 1.0, 4), 0.0);
}

TEST(Analysis, BinomialQuantileInvertsCdf) {
  // Median of Bin(64, 0.5) is 32.
  EXPECT_EQ(binomial_quantile(64, 0.5, 0.5), 32u);
  // Quantiles are monotone in q.
  EXPECT_LE(binomial_quantile(64, 0.5, 0.05), binomial_quantile(64, 0.5, 0.95));
  // Degenerate cases.
  EXPECT_EQ(binomial_quantile(64, 0.0, 0.99), 0u);
  EXPECT_EQ(binomial_quantile(64, 1.0, 0.5), 64u);
}

TEST(Analysis, TimeToExpectedCountInvertsMean) {
  const double t = time_to_expected_count(64, 0.0525, 8.37, 32.0);
  EXPECT_NEAR(expected_malicious_cells(64, 0.0525, t, 8.37), 32.0, 1e-9);
  // With the paper's parameters the mean crosses half the cells within
  // the 8.5-minute budget.
  EXPECT_GT(t, 0.0);
  EXPECT_LT(t, 510.0);
}

TEST(Analysis, TimeToExpectedCountUnreachableTarget) {
  EXPECT_TRUE(std::isinf(time_to_expected_count(64, 0.0525, 8.37, 64.0)));
  EXPECT_TRUE(std::isinf(time_to_expected_count(64, 0.0, 8.37, 1.0)));
}

TEST(Analysis, SuccessProbabilityIncreasesWithTime) {
  const double early =
      attack_success_probability(64, 0.0525, 60.0, 8.37, 32);
  const double late =
      attack_success_probability(64, 0.0525, 300.0, 8.37, 32);
  EXPECT_LT(early, late);
  EXPECT_GT(late, 0.99);  // §3.1: high chance of majority well before 510 s
}

TEST(Analysis, SuccessProbabilityNeedsZeroIsCertain) {
  EXPECT_DOUBLE_EQ(attack_success_probability(64, 0.01, 1.0, 8.37, 0), 1.0);
}

TEST(Analysis, MinQmForSuccessIsSufficientAndTight) {
  const double qm = min_qm_for_success(64, 510.0, 8.37, 32, 0.95);
  EXPECT_GT(qm, 0.0);
  EXPECT_LT(qm, 0.1);  // the paper's 5.25% is in this regime
  EXPECT_GE(attack_success_probability(64, qm, 510.0, 8.37, 32), 0.95);
  EXPECT_LT(attack_success_probability(64, qm * 0.8, 510.0, 8.37, 32), 0.95);
}

TEST(Analysis, LongerResidencyNeedsMoreMaliciousTraffic) {
  // The §3.1 claim "With longer tR, the attack is harder, i.e., requires
  // higher qm" as a property over a sweep.
  double prev = 0.0;
  for (double tr = 2.0; tr <= 40.0; tr += 2.0) {
    const double qm = min_qm_for_success(64, 510.0, tr, 32, 0.95);
    EXPECT_GT(qm, prev) << "tR = " << tr;
    prev = qm;
  }
}

}  // namespace
}  // namespace intox::blink
