// Integration tests: the §3.1 attack end-to-end at the cell-process and
// packet levels, checked against the closed-form analysis. These are the
// "does Fig. 2 reproduce" tests; the bench prints the full figure.
#include <gtest/gtest.h>

#include "blink/attacker.hpp"
#include "blink/cell_process.hpp"

namespace intox::blink {
namespace {

TEST(CellProcess, MatchesClosedFormMean) {
  CellProcessConfig cfg;  // paper parameters
  sim::Rng rng{1};
  // Average 200 runs at t = 150 s and compare with n * p(t).
  const sim::Time probe = sim::seconds(150);
  sim::RunningStats stats;
  for (int r = 0; r < 200; ++r) {
    sim::Rng sub = rng.fork(static_cast<std::uint64_t>(r));
    auto series = simulate_cell_process(cfg, sub);
    stats.add(series.at(probe));
  }
  const double expected =
      expected_malicious_cells(64, cfg.qm, 150.0, cfg.tr_seconds);
  EXPECT_NEAR(stats.mean(), expected, 1.5);
}

TEST(CellProcess, MajorityReachedWithinBudgetAtPaperParameters) {
  CellProcessConfig cfg;
  sim::Rng rng{2};
  const double rate = empirical_success_rate(cfg, 32, 200, rng);
  EXPECT_GT(rate, 0.99);  // §3.1: attack succeeds with high probability
}

TEST(CellProcess, LowQmRarelySucceeds) {
  CellProcessConfig cfg;
  cfg.qm = 0.005;  // 0.5% malicious traffic
  sim::Rng rng{3};
  const double rate = empirical_success_rate(cfg, 32, 200, rng);
  EXPECT_LT(rate, 0.05);
}

TEST(CellProcess, LongerResidencySlowsAttack) {
  sim::Rng rng{4};
  CellProcessConfig fast;
  fast.tr_seconds = 5.0;
  CellProcessConfig slow;
  slow.tr_seconds = 30.0;
  sim::RunningStats t_fast, t_slow;
  for (int r = 0; r < 100; ++r) {
    sim::Rng a = rng.fork(static_cast<std::uint64_t>(r) * 2);
    sim::Rng b = rng.fork(static_cast<std::uint64_t>(r) * 2 + 1);
    const double tf = time_to_majority(fast, 32, a);
    const double ts = time_to_majority(slow, 32, b);
    if (tf >= 0) t_fast.add(tf);
    if (ts >= 0) t_slow.add(ts);
  }
  ASSERT_GT(t_fast.count(), 50u);
  // With tR = 30 s majority within 510 s is rare; when it happens it is
  // far slower than the tR = 5 s case.
  EXPECT_TRUE(t_slow.count() < 50u || t_slow.mean() > 2.0 * t_fast.mean());
}

TEST(PlanAttack, PaperScaleBotnetSuffices) {
  BlinkConfig cfg;
  const AttackPlan plan = plan_attack(cfg, /*legit_flows=*/2000,
                                      /*tr_seconds=*/8.37,
                                      /*confidence=*/0.95);
  // The paper uses 105 flows (qm = 5.25%); a >= 95%-confidence plan needs
  // fewer than that since 5.25% succeeds with overwhelming probability.
  EXPECT_LE(plan.malicious_flows, 105u);
  EXPECT_GT(plan.malicious_flows, 10u);
  EXPECT_GE(plan.success_probability, 0.95);
  EXPECT_GT(plan.expected_majority_time_s, 0.0);
  EXPECT_LT(plan.expected_majority_time_s, 510.0);
}

TEST(Fig2PacketLevel, ShortRunTracksTheory) {
  // Paper-scale population (2000 legit + 105 malicious flows) but a
  // shortened 160 s horizon to keep unit tests fast; the full 510 s / 50
  // run version is bench_blink_fig2. Note the malicious flow *count*
  // cannot be scaled down with the legit population: with fewer flows
  // than cells the capturable-cell ceiling, not q_m, dominates.
  Fig2Config cfg;
  cfg.trace.horizon = sim::seconds(160);
  cfg.seed = 7;
  const Fig2Result r = run_fig2_experiment(cfg);

  ASSERT_FALSE(r.malicious_sampled.empty());
  // Monotone non-decreasing in expectation: compare start vs end.
  const double early = r.malicious_sampled.mean_over(0, sim::seconds(20));
  const double late =
      r.malicious_sampled.mean_over(sim::seconds(140), sim::seconds(160));
  EXPECT_GT(late, early + 5.0);

  // Sampled-residency estimate should be in the neighbourhood of the
  // configured t_R = 8.37 s (packet-level effects blur it somewhat).
  EXPECT_GT(r.measured_tr_seconds, 4.0);
  EXPECT_LT(r.measured_tr_seconds, 14.0);

  // Theory comparison at t = 150 s. The closed form slightly overshoots
  // the packet-level run because only ~52 of the 64 cells are reachable
  // by at least one of the 105 malicious flows (hash-capture ceiling),
  // hence the asymmetric tolerance.
  const double expected = expected_malicious_cells(64, 0.0525, 150.0, 8.37);
  const double observed = r.malicious_sampled.at(sim::seconds(150));
  EXPECT_GT(observed, expected * 0.55);
  EXPECT_LT(observed, expected * 1.25);
}

TEST(Fig2PacketLevel, AttackCausesReroute) {
  Fig2Config cfg;
  cfg.trace.horizon = sim::seconds(220);
  cfg.seed = 8;
  const Fig2Result r = run_fig2_experiment(cfg);
  // Once the sample is majority-malicious the duplicate bursts trip the
  // failure inference: traffic to the victim prefix gets hijacked.
  EXPECT_FALSE(r.reroutes.empty());
  EXPECT_GE(r.time_to_majority_seconds, 0.0);
}

TEST(Fig2PacketLevel, NoAttackNoReroute) {
  Fig2Config cfg;
  cfg.trace.active_flows = 200;
  cfg.trace.horizon = sim::seconds(120);
  cfg.malicious_flows = 0;
  cfg.seed = 9;
  const Fig2Result r = run_fig2_experiment(cfg);
  EXPECT_TRUE(r.reroutes.empty());
  EXPECT_LT(r.time_to_majority_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.malicious_sampled.at(sim::seconds(100)), 0.0);
}

}  // namespace
}  // namespace intox::blink
