// Trace layer: disabled-by-default contract, span emission, and a
// structural check that the flushed file is valid Chrome trace-event
// JSON (parsed structurally here; CI loads a real bench trace through
// python's json module as well).
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace intox::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in{path};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::size_t count_occurrences(const std::string& hay,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t at = hay.find(needle); at != std::string::npos;
       at = hay.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

// The tracer is process-global, so these tests run as one sequence:
// disabled -> enabled -> flushed -> disabled again.
TEST(Trace, DisabledByDefaultAndCheapToCall) {
  // The test binary is run without INTOX_TRACE; nothing may be enabled
  // and every entry point must be a safe no-op.
  ASSERT_FALSE(trace_enabled());
  trace_instant("noop", "test");
  trace_counter("noop", "series", 1.0);
  trace_complete("noop", "test", 0.0);
  { TraceSpan span{"noop", "test"}; EXPECT_FALSE(span.enabled()); }
  EXPECT_FALSE(trace_flush());
}

TEST(Trace, SpansFlushToValidChromeTraceJson) {
  const std::string path = ::testing::TempDir() + "/intox_trace_test.json";
  set_trace_path(path);
  ASSERT_TRUE(trace_enabled());

  {
    TraceSpan outer{"test.outer", "test"};
    outer.arg0("items", 3);
    outer.arg1("workers", 2);
    TraceSpan inner{"test.inner", "test"};
  }
  trace_instant("test.marker", "test");
  trace_counter("test.depth", "pending", 7.0);

  // Spans from other threads must land in the same file even though the
  // recording thread has exited by flush time.
  std::thread worker{[] { TraceSpan span{"test.worker", "test"}; }};
  worker.join();

  ASSERT_TRUE(trace_flush());
  const std::string doc = slurp(path);

  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"test.outer\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"test.inner\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"test.worker\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(doc.find("\"items\":3"), std::string::npos);
  EXPECT_NE(doc.find("\"workers\":2"), std::string::npos);

  // Structural sanity: balanced braces/brackets (no JSON parser in the
  // test toolchain; the strings above contain no nested quoting).
  EXPECT_EQ(count_occurrences(doc, "{"), count_occurrences(doc, "}"));
  EXPECT_EQ(count_occurrences(doc, "["), count_occurrences(doc, "]"));

  // Flush is cumulative and idempotent: a second flush rewrites the same
  // events rather than emitting an empty or truncated file.
  ASSERT_TRUE(trace_flush());
  EXPECT_EQ(slurp(path), doc);

  set_trace_path("");
  EXPECT_FALSE(trace_enabled());
  std::remove(path.c_str());
}

TEST(Trace, ReenableAccumulatesNewEvents) {
  const std::string path = ::testing::TempDir() + "/intox_trace_test2.json";
  set_trace_path(path);
  { TraceSpan span{"test.second_session", "test"}; }
  ASSERT_TRUE(trace_flush());
  EXPECT_NE(slurp(path).find("test.second_session"), std::string::npos);
  set_trace_path("");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace intox::obs
