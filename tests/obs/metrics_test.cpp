// Metrics registry: deterministic folding, histogram merge semantics,
// and the concurrent-recording contract. This binary carries the
// `sanitize` label, so the thread-hammering tests below also run under
// TSan/ASan via `ctest -L sanitize`.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "validate/invariant.hpp"

namespace intox::obs {
namespace {

TEST(Counter, FoldsShardsDeterministically) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

// The determinism contract: the folded total depends only on the work
// performed, never on how that work is spread over threads (and hence
// shards). Same increments, different thread counts, same answer.
TEST(Counter, TotalInvariantAcrossThreadCounts) {
  constexpr std::uint64_t kIncrements = 10000;
  std::vector<std::uint64_t> totals;
  for (std::size_t workers : {1u, 2u, 7u, 32u, 40u}) {
    Counter c;
    std::vector<std::thread> threads;
    for (std::size_t w = 0; w < workers; ++w) {
      threads.emplace_back([&c, workers] {
        for (std::uint64_t i = 0; i < kIncrements / workers; ++i) c.add();
        // Distribute the remainder to thread 0's tail.
      });
    }
    for (auto& t : threads) t.join();
    const std::uint64_t expected = (kIncrements / workers) * workers;
    EXPECT_EQ(c.value(), expected);
    totals.push_back(c.value() + (kIncrements - expected));
  }
  for (std::uint64_t t : totals) EXPECT_EQ(t, kIncrements);
}

TEST(Counter, ConcurrentIncrementStress) {
  Counter c;
  constexpr std::size_t kThreads = 16;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([&c] {
      for (std::uint64_t n = 0; n < kPerThread; ++n) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Gauge, SetAndMax) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.5);
  EXPECT_EQ(g.value(), 3.5);
  g.update_max(2.0);  // lower: no effect
  EXPECT_EQ(g.value(), 3.5);
  g.update_max(7.25);
  EXPECT_EQ(g.value(), 7.25);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
}

// update_max from many threads must land on the true maximum — the
// reason instrumentation uses the max form on shared paths.
TEST(Gauge, ConcurrentMaxIsDeterministic) {
  Gauge g;
  std::vector<std::thread> threads;
  for (int w = 0; w < 8; ++w) {
    threads.emplace_back([&g, w] {
      for (int i = 0; i < 10000; ++i) {
        g.update_max(static_cast<double>(w * 10000 + i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(g.value(), 79999.0);
}

TEST(HistogramMetric, BucketPlacementAndOutOfRange) {
  HistogramMetric h{0.0, 10.0, 10};
  h.observe(0.0);    // bucket 0
  h.observe(9.999);  // bucket 9
  h.observe(5.0);    // bucket 5
  h.observe(-1.0);   // underflow
  h.observe(10.0);   // hi is exclusive -> overflow
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[5], 1u);
  EXPECT_EQ(snap.buckets[9], 1u);
  EXPECT_EQ(snap.underflow, 1u);
  EXPECT_EQ(snap.overflow, 1u);
  EXPECT_EQ(snap.total, 5u);
  EXPECT_EQ(snap.min, -1.0);
  EXPECT_EQ(snap.max, 10.0);
}

TEST(HistogramMetric, NanCountsAsOverflowWithoutPoisoningSum) {
  HistogramMetric h{0.0, 1.0, 4};
  h.observe(0.5);
  h.observe(std::nan(""));
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.total, 2u);
  EXPECT_EQ(snap.overflow, 1u);
  EXPECT_FALSE(std::isnan(snap.sum));
  EXPECT_DOUBLE_EQ(snap.sum, 0.5);
}

// Splitting a sample stream over two histograms and merging their
// snapshots must equal observing the whole stream in one histogram —
// the property the parallel runner's fold relies on.
TEST(HistogramMetric, MergeRoundTrip) {
  HistogramMetric whole{0.0, 100.0, 20};
  HistogramMetric a{0.0, 100.0, 20}, b{0.0, 100.0, 20};
  for (int i = -5; i < 115; ++i) {
    const double x = static_cast<double>(i);
    whole.observe(x);
    (i % 2 ? a : b).observe(x);
  }
  auto merged = a.snapshot();
  ASSERT_TRUE(merged.mergeable(b.snapshot()));
  merged.merge(b.snapshot());
  const auto expect = whole.snapshot();
  EXPECT_EQ(merged.buckets, expect.buckets);
  EXPECT_EQ(merged.underflow, expect.underflow);
  EXPECT_EQ(merged.overflow, expect.overflow);
  EXPECT_EQ(merged.total, expect.total);
  EXPECT_DOUBLE_EQ(merged.sum, expect.sum);
  EXPECT_EQ(merged.min, expect.min);
  EXPECT_EQ(merged.max, expect.max);
  EXPECT_DOUBLE_EQ(merged.mean(), expect.mean());
}

TEST(HistogramMetric, MismatchedLayoutsAreNotMergeable) {
  HistogramMetric a{0.0, 1.0, 4};
  HistogramMetric b{0.0, 2.0, 4};
  HistogramMetric c{0.0, 1.0, 8};
  EXPECT_FALSE(a.snapshot().mergeable(b.snapshot()));
  EXPECT_FALSE(a.snapshot().mergeable(c.snapshot()));
  EXPECT_TRUE(a.snapshot().mergeable(a.snapshot()));
}

TEST(HistogramMetric, ConcurrentObserveStress) {
  HistogramMetric h{0.0, 16.0, 16};
  constexpr std::size_t kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < kThreads; ++w) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) {
        h.observe(static_cast<double>(i % 16));
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.total, kThreads * kPerThread);
  for (std::size_t b = 0; b < 16; ++b) {
    EXPECT_EQ(snap.buckets[b], kThreads * kPerThread / 16);
  }
  EXPECT_EQ(snap.underflow, 0u);
  EXPECT_EQ(snap.overflow, 0u);
}

TEST(Registry, HandlesAreStable) {
  Registry& reg = Registry::global();
  Counter& c1 = reg.counter("test.registry.stable");
  Counter& c2 = reg.counter("test.registry.stable");
  EXPECT_EQ(&c1, &c2);
  Gauge& g1 = reg.gauge("test.registry.gauge");
  Gauge& g2 = reg.gauge("test.registry.gauge");
  EXPECT_EQ(&g1, &g2);
  HistogramMetric& h1 = reg.histogram("test.registry.hist", 0.0, 1.0, 4);
  HistogramMetric& h2 = reg.histogram("test.registry.hist", 0.0, 1.0, 4);
  EXPECT_EQ(&h1, &h2);
}

TEST(Registry, HistogramBoundsMismatchRaisesInvariant) {
  Registry& reg = Registry::global();
  reg.histogram("test.registry.bounds", 0.0, 1.0, 4);
  validate::ScopedInvariantMode guard{validate::InvariantMode::kThrow};
  EXPECT_THROW(reg.histogram("test.registry.bounds", 0.0, 2.0, 4),
               validate::InvariantError);
}

TEST(Registry, SnapshotAndJsonCoverAllKinds) {
  Registry& reg = Registry::global();
  reg.reset_values_for_test();
  reg.counter("test.json.counter").add(3);
  reg.gauge("test.json.gauge").set(1.5);
  reg.histogram("test.json.hist", 0.0, 4.0, 4).observe(2.0);
  reg.register_external_counter("test.json.external", [] {
    return std::uint64_t{99};
  });

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("test.json.counter"), 3u);
  EXPECT_EQ(snap.counters.at("test.json.external"), 99u);
  EXPECT_EQ(snap.gauges.at("test.json.gauge"), 1.5);
  EXPECT_EQ(snap.histograms.at("test.json.hist").total, 1u);

  const std::string json = Registry::to_json(snap);
  EXPECT_NE(json.find("\"test.json.counter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.external\":99"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// Metric folds must not depend on which shard recorded what: spread the
// same workload across different worker counts through the *registry*
// (fresh metric per round) and require byte-identical JSON.
TEST(Registry, JsonIdenticalAcrossThreadPlacement) {
  std::vector<std::string> docs;
  for (std::size_t workers : {1u, 4u, 16u}) {
    Registry& reg = Registry::global();
    reg.reset_values_for_test();
    Counter& c = reg.counter("test.placement.counter");
    HistogramMetric& h = reg.histogram("test.placement.hist", 0.0, 64.0, 8);
    std::vector<std::thread> threads;
    for (std::size_t w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        // Each worker handles the slice i % workers == w of the same
        // global workload, mirroring the parallel runner's sharding.
        for (std::size_t i = w; i < 4096; i += workers) {
          c.add(i % 3);
          h.observe(static_cast<double>(i % 64));
        }
      });
    }
    for (auto& t : threads) t.join();
    const auto snap = reg.snapshot();
    Registry::Snapshot filtered;
    filtered.counters["test.placement.counter"] =
        snap.counters.at("test.placement.counter");
    filtered.histograms["test.placement.hist"] =
        snap.histograms.at("test.placement.hist");
    docs.push_back(Registry::to_json(filtered));
  }
  EXPECT_EQ(docs[0], docs[1]);
  EXPECT_EQ(docs[0], docs[2]);
}

}  // namespace
}  // namespace intox::obs
