// The JSON reader that postmortem tooling rests on: it must accept
// exactly what JsonWriter emits and refuse everything else loudly.
#include "obs/json_parse.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "obs/json.hpp"

namespace intox::obs {
namespace {

JsonValue parse_ok(const std::string& text) {
  JsonValue v;
  std::string error;
  EXPECT_TRUE(json_parse(text, &v, &error)) << error;
  return v;
}

TEST(JsonParse, Scalars) {
  EXPECT_EQ(parse_ok("null").kind, JsonValue::Kind::kNull);
  EXPECT_TRUE(parse_ok("true").boolean);
  EXPECT_FALSE(parse_ok("false").boolean);
  EXPECT_DOUBLE_EQ(parse_ok("42").number, 42.0);
  EXPECT_DOUBLE_EQ(parse_ok("-1.5e2").number, -150.0);
  EXPECT_EQ(parse_ok("\"hi\"").text, "hi");
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse_ok("\"a\\\"b\\\\c\\n\\t\"").text, "a\"b\\c\n\t");
  // BMP \uXXXX decodes to UTF-8.
  EXPECT_EQ(parse_ok("\"\\u00e9\"").text, "\xc3\xa9");
  EXPECT_EQ(parse_ok("\"\\u0041\"").text, "A");
}

TEST(JsonParse, NestedStructures) {
  const JsonValue v =
      parse_ok("{\"a\":[1,2,{\"b\":true}],\"c\":{\"d\":null}}");
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items.size(), 3u);
  EXPECT_EQ(a->items[1].as_u64(), 2u);
  EXPECT_TRUE(a->items[2].find("b")->boolean);
  EXPECT_EQ(v.find("c")->find("d")->kind, JsonValue::Kind::kNull);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, MembersKeepSourceOrder) {
  const JsonValue v = parse_ok("{\"z\":1,\"a\":2,\"m\":3}");
  ASSERT_EQ(v.members.size(), 3u);
  EXPECT_EQ(v.members[0].first, "z");
  EXPECT_EQ(v.members[1].first, "a");
  EXPECT_EQ(v.members[2].first, "m");
}

TEST(JsonParse, AccessorsDegradeToZero) {
  EXPECT_EQ(parse_ok("\"text\"").as_u64(), 0u);
  EXPECT_DOUBLE_EQ(parse_ok("null").as_number(), 0.0);
  EXPECT_EQ(parse_ok("-3").as_u64(), 0u);  // negative clamps, not wraps
}

TEST(JsonParse, ErrorsCarryByteOffsets) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(json_parse("{\"a\":}", &v, &error));
  EXPECT_NE(error.find("5"), std::string::npos) << error;
  error.clear();
  EXPECT_FALSE(json_parse("[1,2] trailing", &v, &error));
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(json_parse("", &v, &error));
  EXPECT_FALSE(error.empty());
}

TEST(JsonParse, DepthIsBounded) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  JsonValue v;
  std::string error;
  EXPECT_FALSE(json_parse(deep, &v, &error));
  EXPECT_NE(error.find("too deep"), std::string::npos) << error;
}

TEST(JsonParse, RoundTripsJsonWriterOutput) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("test.v1");
  w.key("count").value(std::uint64_t{7});
  w.key("ratio").value(0.25);
  w.key("tags").begin_array().value("a\nb").value(true).end_array();
  w.end_object();
  const JsonValue v = parse_ok(w.str());
  EXPECT_EQ(v.find("schema")->text, "test.v1");
  EXPECT_EQ(v.find("count")->as_u64(), 7u);
  EXPECT_DOUBLE_EQ(v.find("ratio")->as_number(), 0.25);
  EXPECT_EQ(v.find("tags")->items[0].text, "a\nb");
}

TEST(JsonParse, FileVariantDistinguishesIo) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(json_parse_file("/nonexistent/doc.json", &v, &error));
  EXPECT_NE(error.find("/nonexistent/doc.json"), std::string::npos);

  const std::string path = ::testing::TempDir() + "json_parse_file.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("{\"ok\":true}\n", f);
  std::fclose(f);
  EXPECT_TRUE(json_parse_file(path, &v, &error)) << error;
  EXPECT_TRUE(v.find("ok")->boolean);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace intox::obs
