// JSON serializer, strict --threads parsing (death tests — satellite
// fix for the silently-ignored malformed value), and the BenchSession
// report round-trip.
#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "validate/invariant.hpp"

namespace intox::obs {
namespace {

char** fake_argv(std::vector<const char*>& store) {
  return const_cast<char**>(store.data());
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string_view{"\x01", 1}), "\\u0001");
  // UTF-8 passes through byte-for-byte.
  EXPECT_EQ(json_escape("q\xc3\xa9"), "q\xc3\xa9");
}

TEST(JsonNumber, RoundTripsAndNullsNonFinite) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(1.5), "1.5");
  EXPECT_EQ(json_number(std::nan("")), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  // Shortest round-trip: parsing the token recovers the exact double.
  const double v = 0.1 + 0.2;
  EXPECT_EQ(std::stod(json_number(v)), v);
}

TEST(JsonWriter, NestedStructureAndCommas) {
  JsonWriter w;
  w.begin_object();
  w.key("a").value(std::uint64_t{1});
  w.key("b").begin_array();
  w.value("x");
  w.value(2.5);
  w.value(true);
  w.begin_object();
  w.key("c").value("d\"e");
  w.end_object();
  w.end_array();
  w.key("raw").raw("{\"n\":3}");
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"a\":1,\"b\":[\"x\",2.5,true,{\"c\":\"d\\\"e\"}],"
            "\"raw\":{\"n\":3}}");
}

TEST(ParseThreads, AcceptsValidAndAbsent) {
  std::vector<const char*> none{"bench", nullptr};
  EXPECT_EQ(parse_threads_arg(1, fake_argv(none)), 0u);
  std::vector<const char*> four{"bench", "--threads", "4", nullptr};
  EXPECT_EQ(parse_threads_arg(3, fake_argv(four)), 4u);
  std::vector<const char*> zero{"bench", "--threads", "0", nullptr};
  EXPECT_EQ(parse_threads_arg(3, fake_argv(zero)), 0u);
  // Unrelated flags are ignored (benches own their other arguments).
  std::vector<const char*> other{"bench", "--runs", "7", nullptr};
  EXPECT_EQ(parse_threads_arg(3, fake_argv(other)), 0u);
}

// The satellite fix: malformed / negative / missing values must fail
// loudly with exit status 2, not silently run on the default count.
TEST(ParseThreadsDeath, RejectsMalformed) {
  std::vector<const char*> bad{"bench", "--threads", "banana", nullptr};
  EXPECT_EXIT(parse_threads_arg(3, fake_argv(bad)),
              ::testing::ExitedWithCode(2), "non-negative integer");
}

TEST(ParseThreadsDeath, RejectsNegative) {
  std::vector<const char*> neg{"bench", "--threads", "-2", nullptr};
  EXPECT_EXIT(parse_threads_arg(3, fake_argv(neg)),
              ::testing::ExitedWithCode(2), "non-negative integer");
}

TEST(ParseThreadsDeath, RejectsTrailingGarbage) {
  std::vector<const char*> junk{"bench", "--threads", "4x", nullptr};
  EXPECT_EXIT(parse_threads_arg(3, fake_argv(junk)),
              ::testing::ExitedWithCode(2), "non-negative integer");
}

TEST(ParseThreadsDeath, RejectsMissingValue) {
  std::vector<const char*> dangling{"bench", "--threads", nullptr};
  EXPECT_EXIT(parse_threads_arg(2, fake_argv(dangling)),
              ::testing::ExitedWithCode(2), "requires a value");
}

TEST(SweepPerf, ImbalanceIsMaxOverMean) {
  SweepPerf p;
  EXPECT_EQ(p.shard_imbalance(), 0.0);  // unknown
  p.shard_seconds = {1.0, 1.0, 4.0, 2.0};
  EXPECT_DOUBLE_EQ(p.shard_imbalance(), 4.0 / 2.0);
  p.shard_seconds = {3.0, 3.0};
  EXPECT_DOUBLE_EQ(p.shard_imbalance(), 1.0);
}

TEST(BenchSession, ParsesFlagsAndRegistersAsCurrent) {
  std::vector<const char*> args{"bench", "--threads", "3",
                                "--metrics-out", "/tmp/ignored.json", nullptr};
  {
    BenchSession session{5, fake_argv(args), "TEST-FAM"};
    EXPECT_EQ(session.threads(), 3u);
    EXPECT_EQ(session.family(), "TEST-FAM");
    EXPECT_EQ(session.report_path(), "/tmp/ignored.json");
    EXPECT_EQ(BenchSession::current(), &session);
    // Keep the dtor from writing the probe file.
    std::remove("/tmp/ignored.json");
  }
  EXPECT_EQ(BenchSession::current(), nullptr);
  std::remove("/tmp/ignored.json");
}

TEST(BenchSession, ReportCarriesSweepsMetricsAndInvariants) {
  Registry::global().reset_values_for_test();
  validate::reset_invariant_violations();
  Registry::global().counter("test.report.counter").add(7);

  BenchSession session{0, nullptr, "TEST-REPORT"};
  SweepPerf sweep;
  sweep.name = "needs \"escaping\"";
  sweep.trials = 10;
  sweep.threads = 2;
  sweep.wall_seconds = 2.0;
  sweep.shard_seconds = {0.9, 1.1};
  ::testing::internal::CaptureStderr();
  emit_sweep_perf(sweep);
  const std::string line = ::testing::internal::GetCapturedStderr();
  // The legacy stderr line survives, now with the name escaped.
  EXPECT_NE(line.find("\"sweep\":\"needs \\\"escaping\\\"\""),
            std::string::npos);
  EXPECT_NE(line.find("\"trials\":10"), std::string::npos);

  const std::string doc = session.to_json();
  EXPECT_NE(doc.find("\"schema\":\"intox.bench_report.v1\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"family\":\"TEST-REPORT\""), std::string::npos);
  EXPECT_NE(doc.find("\"sweep\":\"needs \\\"escaping\\\"\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"trials_per_s\":5"), std::string::npos);
  EXPECT_NE(doc.find("\"shard_wall_s\""), std::string::npos);
  EXPECT_NE(doc.find("\"test.report.counter\":7"), std::string::npos);
  // The registry bridge: validate/'s counter appears in every report.
  EXPECT_NE(doc.find("\"validate.invariant_violations\":0"),
            std::string::npos);
  EXPECT_NE(doc.find("\"invariants\":{"), std::string::npos);
  EXPECT_NE(doc.find("\"violations\":0"), std::string::npos);
}

TEST(BenchSession, WriteRoundTripsThroughFile) {
  const std::string path = ::testing::TempDir() + "/intox_report_test.json";
  {
    std::vector<const char*> args{"bench", "--metrics-out", path.c_str(),
                                  nullptr};
    BenchSession session{3, fake_argv(args), "TEST-WRITE"};
    SweepPerf sweep;
    sweep.name = "s";
    sweep.trials = 1;
    sweep.threads = 1;
    sweep.wall_seconds = 0.5;
    session.record_sweep(sweep);
  }  // dtor writes
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  EXPECT_NE(doc.find("\"family\":\"TEST-WRITE\""), std::string::npos);
  EXPECT_NE(doc.find("\"sweep\":\"s\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace intox::obs
