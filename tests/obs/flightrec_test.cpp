// Flight recorder: lock-free recording, signal-safe dumps, forensics
// rendering. The concurrency tests carry the binary's `sanitize` label,
// so the tsan preset hammers concurrent record/dump; the death tests
// prove the dump-on-failure path end to end (fatal invariant and a real
// SIGSEGV each commit a schema-valid dump before the process dies).
#include "obs/flightrec.hpp"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/forensics.hpp"
#include "obs/json_parse.hpp"
#include "validate/invariant.hpp"

namespace intox::obs {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

/// Finds this thread's lane object ("hot" or "decision") in a parsed
/// dump; nullptr when absent.
const JsonValue* find_lane(const JsonValue& doc, std::uint32_t tid,
                           const char* lane) {
  const JsonValue* threads = doc.find("threads");
  if (threads == nullptr || !threads->is_array()) return nullptr;
  for (const JsonValue& t : threads->items) {
    const JsonValue* id = t.find("tid");
    if (id == nullptr || id->as_u64() != tid) continue;
    const JsonValue* lanes = t.find("lanes");
    if (lanes == nullptr || !lanes->is_array()) return nullptr;
    for (const JsonValue& l : lanes->items) {
      const JsonValue* name = l.find("lane");
      if (name != nullptr && name->text == lane) return &l;
    }
  }
  return nullptr;
}

TEST(Flightrec, RecordingBumpsTheProcessCounter) {
  set_flightrec_enabled(true);
  const std::uint64_t before = flightrec_records_recorded();
  flightrec_record(FrType::kNote, 1, 2, 3, 4);
  flightrec_record(FrType::kSchedFire, 5);
  EXPECT_EQ(flightrec_records_recorded(), before + 2);
  EXPECT_GE(flightrec_registered_threads(), 1u);
}

TEST(Flightrec, DisabledRecordingIsANoOp) {
  set_flightrec_enabled(true);
  flightrec_record(FrType::kNote, 1);  // ensure the thread is registered
  set_flightrec_enabled(false);
  const std::uint64_t before = flightrec_records_recorded();
  flightrec_record(FrType::kNote, 2);
  EXPECT_EQ(flightrec_records_recorded(), before);
  set_flightrec_enabled(true);
}

TEST(Flightrec, TypeNamesAreStable) {
  EXPECT_STREQ(flightrec_type_name(FrType::kSchedFire), "sched.fire");
  EXPECT_STREQ(flightrec_type_name(FrType::kBlinkReroute), "blink.reroute");
  EXPECT_STREQ(flightrec_type_name(FrType::kPccDecision), "pcc.decision");
  EXPECT_STREQ(flightrec_type_name(static_cast<FrType>(999)), "none");
}

TEST(Flightrec, DumpIsSchemaValidAndAccountsForEveryRecord) {
  set_flightrec_enabled(true);
  flightrec_set_scenario("flightrec.unit");
  const std::uint32_t tid = flightrec_this_thread_tid();
  // A sentinel in each lane: kSchedFire lands hot, kNote decision.
  flightrec_record(FrType::kSchedFire, 777001, 1, 2, 3);
  flightrec_record(FrType::kNote, 777002, 4, 5, 6);

  const std::string path = temp_path("flightrec_unit.json");
  ASSERT_TRUE(flightrec_dump(path.c_str(), "manual", "unit test"));

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse_file(path, &doc, &error)) << error;
  EXPECT_EQ(doc.find("schema")->text, kFlightrecSchema);
  EXPECT_EQ(doc.find("reason")->text, "manual");
  EXPECT_EQ(doc.find("detail")->text, "unit test");
  EXPECT_EQ(doc.find("scenario")->text, "flightrec.unit");
  EXPECT_GT(doc.find("pid")->as_u64(), 0u);
  ASSERT_EQ(doc.find("types")->items.size(), kFrTypeCount);
  EXPECT_EQ(doc.find("types")->items[1].text, "sched.fire");
  ASSERT_NE(doc.find("invariants"), nullptr);
  ASSERT_NE(doc.find("invariants")->find("recent_messages"), nullptr);

  for (const char* lane : {"hot", "decision"}) {
    const JsonValue* l = find_lane(doc, tid, lane);
    ASSERT_NE(l, nullptr) << lane;
    // recorded == dropped + kept is the lane bookkeeping invariant.
    EXPECT_EQ(l->find("recorded")->as_u64(),
              l->find("dropped")->as_u64() +
                  l->find("records")->items.size())
        << lane;
  }
  // The sentinels are the newest entries of their lanes, words intact.
  const JsonValue* hot = find_lane(doc, tid, "hot");
  const JsonValue& last_hot = hot->find("records")->items.back();
  ASSERT_EQ(last_hot.items.size(), 5u);
  EXPECT_EQ(last_hot.items[0].as_u64(), 777001u);
  EXPECT_EQ(last_hot.items[1].as_u64(),
            static_cast<std::uint64_t>(FrType::kSchedFire));
  EXPECT_EQ(last_hot.items[4].as_u64(), 3u);
  const JsonValue* decision = find_lane(doc, tid, "decision");
  const JsonValue& last_dec = decision->find("records")->items.back();
  EXPECT_EQ(last_dec.items[0].as_u64(), 777002u);
  EXPECT_EQ(last_dec.items[4].as_u64(), 6u);
  std::remove(path.c_str());
}

TEST(Flightrec, RingKeepsTheLastRecordsWhenOverflowed) {
  set_flightrec_enabled(true);
  const std::uint32_t tid = flightrec_this_thread_tid();
  // Well past the decision-lane capacity (1024 by default): the ring
  // must keep the *newest* records and account for the evictions.
  constexpr std::uint64_t kWrites = 3000;
  for (std::uint64_t i = 0; i < kWrites; ++i) {
    flightrec_record(FrType::kNote, i, i, 0, 0);
  }
  const std::string path = temp_path("flightrec_overflow.json");
  ASSERT_TRUE(flightrec_dump(path.c_str(), "manual", nullptr));
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse_file(path, &doc, &error)) << error;
  const JsonValue* lane = find_lane(doc, tid, "decision");
  ASSERT_NE(lane, nullptr);
  EXPECT_GT(lane->find("dropped")->as_u64(), 0u);
  EXPECT_EQ(lane->find("recorded")->as_u64(),
            lane->find("dropped")->as_u64() +
                lane->find("records")->items.size());
  const JsonValue& newest = lane->find("records")->items.back();
  EXPECT_EQ(newest.items[0].as_u64(), kWrites - 1);
  std::remove(path.c_str());
}

TEST(Flightrec, ConcurrentRecordAndDumpIsRaceFree) {
  // TSan target: four writers flooding both lanes while the main thread
  // dumps repeatedly. Torn records are acceptable; races are not.
  set_flightrec_enabled(true);
  const std::string path = temp_path("flightrec_stress.json");
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([w] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        flightrec_record(FrType::kSchedFire, i, static_cast<std::uint64_t>(w));
        if ((i & 1023) == 0) {
          flightrec_record(FrType::kPccDecision, i, 1, i, i + 1);
        }
      }
    });
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(flightrec_dump(path.c_str(), "manual", "stress"));
  }
  for (std::thread& t : writers) t.join();
  // A final quiescent dump parses and sees every writer thread.
  ASSERT_TRUE(flightrec_dump(path.c_str(), "manual", "stress"));
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse_file(path, &doc, &error)) << error;
  EXPECT_GE(doc.find("threads")->items.size(),
            static_cast<std::size_t>(kWriters));
  std::remove(path.c_str());
}

TEST(Flightrec, ForensicsRendersTheDump) {
  set_flightrec_enabled(true);
  flightrec_set_scenario("flightrec.render");
  flightrec_record(FrType::kBlinkReroute, 2500000000ull, 0x0a000000u, 8, 3);
  flightrec_record(FrType::kPccDecision, 3000000000ull, 2, 4000000, 2000000);
  const std::string path = temp_path("flightrec_render.json");
  ASSERT_TRUE(flightrec_dump(path.c_str(), "manual", "render"));

  FlightrecDump dump;
  std::string error;
  ASSERT_TRUE(load_flightrec_dump(path, &dump, &error)) << error;
  EXPECT_EQ(dump.scenario, "flightrec.render");
  ASSERT_FALSE(dump.records.empty());
  // Records arrive (time, tid, seq)-sorted.
  for (std::size_t i = 1; i < dump.records.size(); ++i) {
    EXPECT_LE(dump.records[i - 1].time, dump.records[i].time);
  }

  const std::string timeline = render_flightrec_timeline(dump);
  EXPECT_NE(timeline.find("flightrec.render"), std::string::npos);
  EXPECT_NE(timeline.find("REROUTE"), std::string::npos);
  EXPECT_NE(timeline.find("10.0.0.0/8"), std::string::npos);
  EXPECT_NE(timeline.find("rate DOWN"), std::string::npos);

  const std::string trace = render_flightrec_chrome_trace(dump);
  JsonValue doc;
  ASSERT_TRUE(json_parse(trace, &doc, &error)) << error;
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_FALSE(events->items.empty());
  EXPECT_EQ(events->items[0].find("ph")->text, "M");
  std::remove(path.c_str());
}

TEST(Flightrec, MergeChromeTracesFoldsLanesAndSkipsUnreadable) {
  const std::string a = temp_path("flightrec_trace_a.json");
  const std::string b = temp_path("flightrec_trace_b.json");
  const std::string out = temp_path("flightrec_trace_merged.json");
  auto write = [](const std::string& path, const char* body) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(body, f);
    std::fclose(f);
  };
  write(a,
        "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"i\",\"ts\":1,"
        "\"pid\":100,\"tid\":1,\"s\":\"t\"}]}");
  write(b,
        "{\"traceEvents\":[{\"name\":\"y\",\"ph\":\"i\",\"ts\":2,"
        "\"pid\":200,\"tid\":1,\"s\":\"t\"}]}");
  std::string error;
  ASSERT_TRUE(merge_chrome_traces({a, "/nonexistent/trace.json", b},
                                  {"first", "gone", "second"}, out, &error))
      << error;
  JsonValue doc;
  ASSERT_TRUE(json_parse_file(out, &doc, &error)) << error;
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::size_t instants = 0;
  std::size_t labels = 0;
  for (const JsonValue& e : events->items) {
    if (e.find("ph")->text == "i") ++instants;
    if (e.find("ph")->text == "M") ++labels;
  }
  EXPECT_EQ(instants, 2u);
  EXPECT_EQ(labels, 2u);  // one process_name per distinct pid

  // No readable input at all is an error.
  EXPECT_FALSE(merge_chrome_traces({"/nonexistent/only.json"}, {"x"}, out,
                                   &error));
  for (const std::string& p : {a, b, out}) std::remove(p.c_str());
}

using FlightrecDeathTest = ::testing::Test;

TEST(FlightrecDeathTest, FatalInvariantCommitsADumpBeforeAborting) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path = temp_path("flightrec_fatal_invariant.json");
  std::remove(path.c_str());
  EXPECT_EXIT(
      {
        set_flightrec_dump_path(path);
        flightrec_init();
        flightrec_set_scenario("flightrec.fatal");
        flightrec_record(FrType::kNote, 42, 1, 2, 3);
        validate::set_invariant_mode(validate::InvariantMode::kFatal);
        INTOX_INVARIANT(false, "flight recorder death test");
      },
      ::testing::KilledBySignal(SIGABRT), "flight recorder death test");
  FlightrecDump dump;
  std::string error;
  ASSERT_TRUE(load_flightrec_dump(path, &dump, &error)) << error;
  EXPECT_EQ(dump.reason, "invariant");
  EXPECT_EQ(dump.scenario, "flightrec.fatal");
  EXPECT_NE(dump.detail.find("flight recorder death test"),
            std::string::npos);
  EXPECT_GE(dump.invariant_violations, 1u);
  ASSERT_FALSE(dump.recent_messages.empty());
  EXPECT_NE(dump.recent_messages.back().find("flight recorder death test"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightrecDeathTest, SegfaultCommitsADumpAndDiesBySignal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path = temp_path("flightrec_segv.json");
  std::remove(path.c_str());
  EXPECT_EXIT(
      {
        set_flightrec_dump_path(path);
        flightrec_init();
        flightrec_set_scenario("flightrec.segv");
        flightrec_record(FrType::kSchedFire, 123456789);
        std::raise(SIGSEGV);
      },
      ::testing::KilledBySignal(SIGSEGV), "");
  FlightrecDump dump;
  std::string error;
  ASSERT_TRUE(load_flightrec_dump(path, &dump, &error)) << error;
  EXPECT_EQ(dump.reason, "signal:SIGSEGV");
  EXPECT_EQ(dump.scenario, "flightrec.segv");
  ASSERT_FALSE(dump.records.empty());
  bool found = false;
  for (const FlightrecRecord& r : dump.records) {
    if (r.type == FrType::kSchedFire && r.time == 123456789) found = true;
  }
  EXPECT_TRUE(found);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace intox::obs
