// §3.2 DAPPER attack: "An attacker can implicate either of these three
// for performance problems by manipulating TCP packets."
#include <gtest/gtest.h>

#include "dapper/attack.hpp"

namespace intox::dapper {
namespace {

TEST(DapperAttack, BaselineIsHealthy) {
  const auto r =
      run_diagnosis_experiment(ConversationConfig{}, Implicate::kNone);
  EXPECT_EQ(r.dominant, Verdict::kHealthy);
  EXPECT_GT(r.healthy_fraction, 0.9);
  EXPECT_EQ(r.packets_touched, 0u);
}

TEST(DapperAttack, CanImplicateTheNetwork) {
  const auto r =
      run_diagnosis_experiment(ConversationConfig{}, Implicate::kNetwork);
  EXPECT_EQ(r.dominant, Verdict::kNetworkLimited);
  EXPECT_GT(r.network_fraction, 0.8);
}

TEST(DapperAttack, CanImplicateTheReceiver) {
  const auto r =
      run_diagnosis_experiment(ConversationConfig{}, Implicate::kReceiver);
  EXPECT_EQ(r.dominant, Verdict::kReceiverLimited);
  EXPECT_GT(r.receiver_fraction, 0.8);
}

TEST(DapperAttack, CanImplicateTheSender) {
  const auto r =
      run_diagnosis_experiment(ConversationConfig{}, Implicate::kSender);
  EXPECT_EQ(r.dominant, Verdict::kSenderLimited);
  EXPECT_GT(r.sender_fraction, 0.8);
}

TEST(DapperAttack, TamperingShareIsSmallForNetworkImplication) {
  // Replaying ~8% of data segments suffices; header rewrites (receiver /
  // sender implication) touch ACKs only.
  const auto r =
      run_diagnosis_experiment(ConversationConfig{}, Implicate::kNetwork);
  EXPECT_LT(static_cast<double>(r.packets_touched),
            0.1 * static_cast<double>(r.packets_total));
}

TEST(DapperAttack, AllThreePartiesImplicableFromOneVantage) {
  // The §3.2 sentence, verbatim as a property: for every party there
  // exists a manipulation that pins the blame there.
  for (Implicate target :
       {Implicate::kSender, Implicate::kNetwork, Implicate::kReceiver}) {
    const auto r = run_diagnosis_experiment(ConversationConfig{}, target);
    switch (target) {
      case Implicate::kSender:
        EXPECT_EQ(r.dominant, Verdict::kSenderLimited);
        break;
      case Implicate::kNetwork:
        EXPECT_EQ(r.dominant, Verdict::kNetworkLimited);
        break;
      case Implicate::kReceiver:
        EXPECT_EQ(r.dominant, Verdict::kReceiverLimited);
        break;
      default:
        break;
    }
  }
}

TEST(DapperAttack, GenuineSporadicLossStaysBelowThreshold) {
  ConversationConfig cfg;
  cfg.genuine_retx_prob = 0.01;  // 1% — noisy but healthy path
  const auto r = run_diagnosis_experiment(cfg, Implicate::kNone);
  EXPECT_EQ(r.dominant, Verdict::kHealthy);
}

}  // namespace
}  // namespace intox::dapper
