#include "dapper/diagnoser.hpp"

#include <gtest/gtest.h>

namespace intox::dapper {
namespace {

net::TcpHeader data_pkt(std::uint32_t seq) {
  net::TcpHeader t;
  t.src_port = 45000;
  t.dst_port = 443;
  t.seq = seq;
  t.ack_flag = true;
  return t;
}

net::TcpHeader ack_pkt(std::uint32_t ack, std::uint16_t window) {
  net::TcpHeader t;
  t.src_port = 443;
  t.dst_port = 45000;
  t.ack = ack;
  t.window = window;
  t.ack_flag = true;
  return t;
}

// Drives `seconds` of a synthetic conversation at a given utilization and
// retransmission probability-free pattern.
void drive(TcpDiagnoser& d, double utilization, int seconds,
           int retx_every_n = 0) {
  std::uint32_t seq = 1000000;  // comfortably above flight (no underflow)
  const std::uint32_t rwnd = 65535;
  const auto flight = static_cast<std::uint32_t>(utilization * rwnd);
  int i = 0;
  for (sim::Time t = 0; t < sim::seconds(seconds); t += sim::millis(10)) {
    seq += 1448;
    d.on_data(data_pkt(seq), 1448, t);
    if (retx_every_n > 0 && ++i % retx_every_n == 0) {
      d.on_data(data_pkt(seq), 1448, t + sim::millis(1));
    }
    d.on_ack(ack_pkt(seq - flight, rwnd), t + sim::millis(5));
  }
}

TEST(TcpDiagnoser, HealthyConversationIsHealthy) {
  TcpDiagnoser d{DapperConfig{}};
  drive(d, 0.7, 10);
  ASSERT_GE(d.windows().size(), 8u);
  EXPECT_GT(d.verdict_fraction(Verdict::kHealthy), 0.9);
}

TEST(TcpDiagnoser, HighLossIsNetworkLimited) {
  TcpDiagnoser d{DapperConfig{}};
  drive(d, 0.7, 10, /*retx_every_n=*/20);  // 5% retransmissions
  EXPECT_GT(d.verdict_fraction(Verdict::kNetworkLimited), 0.9);
}

TEST(TcpDiagnoser, FullWindowIsReceiverLimited) {
  TcpDiagnoser d{DapperConfig{}};
  drive(d, 0.97, 10);
  EXPECT_GT(d.verdict_fraction(Verdict::kReceiverLimited), 0.9);
}

TEST(TcpDiagnoser, IdleSenderIsSenderLimited) {
  TcpDiagnoser d{DapperConfig{}};
  drive(d, 0.2, 10);
  EXPECT_GT(d.verdict_fraction(Verdict::kSenderLimited), 0.9);
}

TEST(TcpDiagnoser, NetworkVerdictTrumpsWindowPressure) {
  // Heavy loss *and* full window: DAPPER blames the network first.
  TcpDiagnoser d{DapperConfig{}};
  drive(d, 0.97, 10, /*retx_every_n=*/10);
  EXPECT_GT(d.verdict_fraction(Verdict::kNetworkLimited), 0.9);
}

TEST(TcpDiagnoser, WindowStatsExposeRawSignals) {
  TcpDiagnoser d{DapperConfig{}};
  drive(d, 0.7, 5, /*retx_every_n=*/50);
  ASSERT_FALSE(d.windows().empty());
  const WindowStats& w = d.windows().front();
  EXPECT_GT(w.data_packets, 50u);
  EXPECT_GT(w.retransmissions, 0u);
  EXPECT_GT(w.mean_flight_bytes, 0.0);
  EXPECT_GT(w.rwnd_utilization, 0.5);
  EXPECT_LT(w.rwnd_utilization, 0.9);
}

TEST(TcpDiagnoser, VerdictNamesAreStable) {
  EXPECT_STREQ(to_string(Verdict::kHealthy), "healthy");
  EXPECT_STREQ(to_string(Verdict::kNetworkLimited), "network-limited");
  EXPECT_STREQ(to_string(Verdict::kReceiverLimited), "receiver-limited");
  EXPECT_STREQ(to_string(Verdict::kSenderLimited), "sender-limited");
}

}  // namespace
}  // namespace intox::dapper
