// Pipeline-stage composition semantics on the routed switch: stages run
// in insertion order, each sees the previous stage's metadata, and a
// drop short-circuits the rest — the contract Blink and SP-PIFO rely on.
#include <gtest/gtest.h>

#include "dataplane/switch.hpp"

namespace intox::dataplane {
namespace {

class RecordingStage : public PacketProcessor {
 public:
  RecordingStage(int id, std::vector<int>& log, int override_port = -1,
                 bool drop = false)
      : id_(id), log_(log), override_port_(override_port), drop_(drop) {}

  void process(const net::Packet&, PipelineMetadata& meta, sim::Time) override {
    log_.push_back(id_);
    seen_egress_.push_back(meta.egress_port);
    if (override_port_ >= 0) meta.egress_port = override_port_;
    if (drop_) meta.drop = true;
  }

  std::vector<int> seen_egress_;

 private:
  int id_;
  std::vector<int>& log_;
  int override_port_;
  bool drop_;
};

struct Fixture {
  sim::Scheduler sched;
  sim::Network net{sched};
  CallbackNode src{"src", nullptr};
  RoutedSwitch sw{"sw", sched, net::Ipv4Addr{192, 0, 2, 1}};
  CallbackNode a{"a", nullptr};
  CallbackNode b{"b", nullptr};

  Fixture() {
    net.connect(src, 0, sw, 0, sim::LinkConfig{});
    net.connect(sw, 1, a, 0, sim::LinkConfig{});
    net.connect(sw, 2, b, 0, sim::LinkConfig{});
    sw.add_route(net::Prefix{net::Ipv4Addr{10, 0, 0, 0}, 8}, 1);
  }

  void inject() {
    net::Packet p;
    p.src = net::Ipv4Addr{1, 2, 3, 4};
    p.dst = net::Ipv4Addr{10, 0, 0, 1};
    p.l4 = net::TcpHeader{1000, 80, 1, 0};
    src.inject(0, p);
    sched.run();
  }
};

TEST(PipelineOrder, StagesRunInInsertionOrder) {
  Fixture f;
  std::vector<int> log;
  RecordingStage s1{1, log}, s2{2, log}, s3{3, log};
  f.sw.add_processor(&s1);
  f.sw.add_processor(&s2);
  f.sw.add_processor(&s3);
  f.inject();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(PipelineOrder, LaterStageSeesEarlierOverride) {
  Fixture f;
  std::vector<int> log;
  RecordingStage s1{1, log, /*override_port=*/2};
  RecordingStage s2{2, log};
  f.sw.add_processor(&s1);
  f.sw.add_processor(&s2);
  int to_a = 0, to_b = 0;
  f.a.set_handler([&](net::Packet, int) { ++to_a; });
  f.b.set_handler([&](net::Packet, int) { ++to_b; });
  f.inject();
  // Stage 1 saw the routing decision (port 1); stage 2 saw the override.
  EXPECT_EQ(s1.seen_egress_, (std::vector<int>{1}));
  EXPECT_EQ(s2.seen_egress_, (std::vector<int>{2}));
  EXPECT_EQ(to_a, 0);
  EXPECT_EQ(to_b, 1);
}

TEST(PipelineOrder, DropShortCircuitsRemainingStages) {
  Fixture f;
  std::vector<int> log;
  RecordingStage s1{1, log, -1, /*drop=*/true};
  RecordingStage s2{2, log};
  f.sw.add_processor(&s1);
  f.sw.add_processor(&s2);
  f.inject();
  EXPECT_EQ(log, (std::vector<int>{1}));
  EXPECT_EQ(f.sw.counters().dropped_pipeline, 1u);
}

TEST(PipelineOrder, LastOverrideWins) {
  Fixture f;
  std::vector<int> log;
  RecordingStage s1{1, log, 2};
  RecordingStage s2{2, log, 1};
  f.sw.add_processor(&s1);
  f.sw.add_processor(&s2);
  int to_a = 0;
  f.a.set_handler([&](net::Packet, int) { ++to_a; });
  f.inject();
  EXPECT_EQ(to_a, 1);
}

}  // namespace
}  // namespace intox::dataplane
