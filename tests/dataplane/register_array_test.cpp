#include "dataplane/register_array.hpp"

#include <gtest/gtest.h>

#include "dataplane/match_action.hpp"

namespace intox::dataplane {
namespace {

TEST(RegisterArray, InitializesToGivenValue) {
  RegisterArray<int> r{4, 7};
  EXPECT_EQ(r.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(r.read(i), 7);
}

TEST(RegisterArray, WriteRead) {
  RegisterArray<int> r{8};
  r.write(3, 42);
  EXPECT_EQ(r.read(3), 42);
  EXPECT_EQ(r.read(2), 0);
}

TEST(RegisterArray, ApplyReadModifyWrite) {
  RegisterArray<int> r{2};
  const int before = r.apply(0, [](int& v) {
    const int old = v;
    v += 5;
    return old;
  });
  EXPECT_EQ(before, 0);
  EXPECT_EQ(r.read(0), 5);
}

TEST(RegisterArray, OutOfRangeThrows) {
  RegisterArray<int> r{4};
  EXPECT_THROW((void)r.read(4), std::out_of_range);
  // A compiler-opaque index keeps the bounds check observable (and the
  // optimizer from flagging a provably-OOB constant access).
  volatile std::size_t big = 100;
  EXPECT_THROW(r.write(big, 1), std::out_of_range);
  EXPECT_THROW(r.apply(4, [](int&) {}), std::out_of_range);
}

TEST(RegisterArray, ResetRestoresInitial) {
  RegisterArray<int> r{3, -1};
  r.write(0, 5);
  r.write(2, 9);
  r.reset();
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(r.read(i), -1);
}

TEST(MatchActionTable, LookupFallsBackToDefault) {
  MatchActionTable<int, std::string> t{"default"};
  t.insert(1, "one");
  EXPECT_EQ(t.lookup(1), "one");
  EXPECT_EQ(t.lookup(2), "default");
  EXPECT_TRUE(t.contains(1));
  EXPECT_FALSE(t.contains(2));
}

TEST(MatchActionTable, EraseRemovesEntry) {
  MatchActionTable<int, int> t{-1};
  t.insert(5, 50);
  EXPECT_TRUE(t.erase(5));
  EXPECT_FALSE(t.erase(5));
  EXPECT_EQ(t.lookup(5), -1);
}

}  // namespace
}  // namespace intox::dataplane
