#include "dataplane/switch.hpp"

#include <gtest/gtest.h>

namespace intox::dataplane {
namespace {

using net::Ipv4Addr;
using net::Prefix;

struct Fixture {
  sim::Scheduler sched;
  sim::Network net{sched};
  CallbackNode src{"src", nullptr};
  RoutedSwitch sw{"sw", sched, Ipv4Addr{192, 0, 2, 1}};
  CallbackNode dst{"dst", nullptr};

  Fixture() {
    net.connect(src, 0, sw, 0, sim::LinkConfig{});
    net.connect(sw, 1, dst, 0, sim::LinkConfig{});
    sw.add_route(Prefix{Ipv4Addr{10, 0, 0, 0}, 8}, 1);
    sw.add_route(Prefix{Ipv4Addr{1, 0, 0, 0}, 8}, 0);  // back to src
  }

  net::Packet tcp_to(Ipv4Addr dst_addr, std::uint8_t ttl = 64) {
    net::Packet p;
    p.src = Ipv4Addr{1, 2, 3, 4};
    p.dst = dst_addr;
    p.ttl = ttl;
    p.l4 = net::TcpHeader{1000, 80, 1, 0};
    return p;
  }
};

TEST(RoutedSwitch, ForwardsOnLpmMatch) {
  Fixture f;
  int got = 0;
  f.dst.set_handler([&](net::Packet, int) { ++got; });
  f.src.inject(0, f.tcp_to(Ipv4Addr{10, 0, 0, 5}));
  f.sched.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(f.sw.counters().forwarded, 1u);
}

TEST(RoutedSwitch, DropsWithoutRoute) {
  Fixture f;
  int got = 0;
  f.dst.set_handler([&](net::Packet, int) { ++got; });
  f.src.inject(0, f.tcp_to(Ipv4Addr{99, 0, 0, 1}));
  f.sched.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(f.sw.counters().dropped_no_route, 1u);
}

TEST(RoutedSwitch, DecrementsTtl) {
  Fixture f;
  std::uint8_t seen_ttl = 0;
  f.dst.set_handler([&](net::Packet p, int) { seen_ttl = p.ttl; });
  f.src.inject(0, f.tcp_to(Ipv4Addr{10, 0, 0, 5}, 64));
  f.sched.run();
  EXPECT_EQ(seen_ttl, 63);
}

TEST(RoutedSwitch, TtlExpiryGeneratesIcmpTimeExceeded) {
  Fixture f;
  std::vector<net::Packet> replies;
  f.src.set_handler(
      [&](net::Packet p, int) { replies.push_back(std::move(p)); });
  f.src.inject(0, f.tcp_to(Ipv4Addr{10, 0, 0, 5}, /*ttl=*/1));
  f.sched.run();
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_NE(replies[0].icmp(), nullptr);
  EXPECT_EQ(replies[0].icmp()->type, net::IcmpType::kTimeExceeded);
  EXPECT_EQ(replies[0].src, (Ipv4Addr{192, 0, 2, 1}));
  EXPECT_EQ(f.sw.counters().ttl_expired, 1u);
}

TEST(RoutedSwitch, ReplyAddrOverrideFakesIdentity) {
  Fixture f;
  f.sw.set_reply_addr(Ipv4Addr{203, 0, 113, 9});  // the NetHide trick
  std::vector<net::Packet> replies;
  f.src.set_handler(
      [&](net::Packet p, int) { replies.push_back(std::move(p)); });
  f.src.inject(0, f.tcp_to(Ipv4Addr{10, 0, 0, 5}, 1));
  f.sched.run();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].src, (Ipv4Addr{203, 0, 113, 9}));
}

class PortOverrideStage : public PacketProcessor {
 public:
  explicit PortOverrideStage(int port) : port_(port) {}
  void process(const net::Packet&, PipelineMetadata& meta, sim::Time) override {
    meta.egress_port = port_;
  }

 private:
  int port_;
};

class DropStage : public PacketProcessor {
 public:
  void process(const net::Packet&, PipelineMetadata& meta, sim::Time) override {
    meta.drop = true;
  }
};

TEST(RoutedSwitch, PipelineCanOverrideEgress) {
  Fixture f;
  // Route says port 1 (dst); pipeline redirects back to port 0 (src).
  PortOverrideStage stage{0};
  f.sw.add_processor(&stage);
  int to_dst = 0, to_src = 0;
  f.dst.set_handler([&](net::Packet, int) { ++to_dst; });
  f.src.set_handler([&](net::Packet, int) { ++to_src; });
  f.src.inject(0, f.tcp_to(Ipv4Addr{10, 0, 0, 5}));
  f.sched.run();
  EXPECT_EQ(to_dst, 0);
  EXPECT_EQ(to_src, 1);
}

TEST(RoutedSwitch, PipelineDropShortCircuits) {
  Fixture f;
  DropStage stage;
  f.sw.add_processor(&stage);
  int got = 0;
  f.dst.set_handler([&](net::Packet, int) { ++got; });
  f.src.inject(0, f.tcp_to(Ipv4Addr{10, 0, 0, 5}));
  f.sched.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(f.sw.counters().dropped_pipeline, 1u);
}

}  // namespace
}  // namespace intox::dataplane
