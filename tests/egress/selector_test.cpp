#include "egress/selector.hpp"

#include <gtest/gtest.h>

#include "egress/attack.hpp"

namespace intox::egress {
namespace {

net::Packet flow_pkt(std::uint16_t port) {
  net::Packet p;
  p.src = net::Ipv4Addr{1, 2, 3, 4};
  p.dst = net::Ipv4Addr{198, 51, 100, 1};
  net::TcpHeader t;
  t.src_port = port;
  t.dst_port = 443;
  p.l4 = t;
  return p;
}

struct Harness {
  sim::Scheduler sched;
  EgressConfig cfg;
  std::vector<std::uint64_t> sent_per_path;
  std::unique_ptr<EgressSelector> selector;

  Harness() {
    cfg.paths = 3;
    sent_per_path.assign(3, 0);
    selector = std::make_unique<EgressSelector>(
        sched, cfg, [this](std::size_t p, net::Packet) {
          ++sent_per_path[p];
        });
  }
};

TEST(EgressSelector, MostTrafficOnPreferredSomeExploring) {
  Harness h;
  for (std::uint16_t i = 0; i < 2000; ++i) {
    h.selector->forward(flow_pkt(static_cast<std::uint16_t>(1000 + i)));
  }
  EXPECT_GT(h.sent_per_path[0], 1700u);
  EXPECT_GT(h.sent_per_path[1], 20u);  // ~5% exploring each alternative
  EXPECT_GT(h.sent_per_path[2], 20u);
}

TEST(EgressSelector, FlowStickiness) {
  Harness h;
  std::size_t first_path = 99;
  h.selector = std::make_unique<EgressSelector>(
      h.sched, h.cfg, [&](std::size_t p, net::Packet) { first_path = p; });
  h.selector->forward(flow_pkt(1234));
  const std::size_t again = first_path;
  for (int i = 0; i < 10; ++i) h.selector->forward(flow_pkt(1234));
  EXPECT_EQ(first_path, again);  // same flow, same path, every time
}

TEST(EgressSelector, SwitchesToClearlyBetterPath) {
  Harness h;
  h.selector->start();
  // Path 0 looks bad, path 1 looks great.
  for (int i = 0; i < 50; ++i) {
    h.selector->on_delivery(0, sim::millis(80));
    h.selector->on_delivery(1, sim::millis(15));
    h.selector->on_delivery(2, sim::millis(40));
  }
  h.sched.run_until(sim::seconds(2));
  h.selector->stop();
  EXPECT_EQ(h.selector->preferred_path(), 1u);
  EXPECT_EQ(h.selector->switches(), 1u);
}

TEST(EgressSelector, HysteresisIgnoresMarginalDifferences) {
  Harness h;
  h.selector->start();
  for (int i = 0; i < 50; ++i) {
    h.selector->on_delivery(0, sim::millis(20));
    h.selector->on_delivery(1, sim::millis(19));  // only 5% better
    h.selector->on_delivery(2, sim::millis(30));
  }
  h.sched.run_until(sim::seconds(2));
  h.selector->stop();
  EXPECT_EQ(h.selector->preferred_path(), 0u);
  EXPECT_EQ(h.selector->switches(), 0u);
}

TEST(EgressSelector, LossPoisonsPathScore) {
  Harness h;
  h.selector->start();
  for (int i = 0; i < 50; ++i) {
    h.selector->on_delivery(0, sim::millis(20));
    h.selector->on_delivery(1, sim::millis(25));
  }
  // Burst of losses on path 0.
  for (int i = 0; i < 20; ++i) h.selector->on_loss(0);
  h.sched.run_until(sim::seconds(2));
  h.selector->stop();
  EXPECT_EQ(h.selector->preferred_path(), 1u);
  EXPECT_GT(h.selector->stats(0).loss, 0.5);
}

TEST(EgressAttack, NoAttackPicksHonestBestPath) {
  EgressExperimentConfig cfg;
  cfg.attack = false;
  const auto r = run_egress_attack_experiment(cfg);
  EXPECT_EQ(r.preferred_before, 0u);  // 10 ms path
  EXPECT_EQ(r.preferred_after, 0u);
  EXPECT_EQ(r.attacker_dropped, 0u);
  EXPECT_NEAR(r.mean_rtt_after_ms, 20.0, 2.0);
}

TEST(EgressAttack, DegradingGoodPathsDivertsToAttackerPath) {
  EgressExperimentConfig cfg;
  const auto r = run_egress_attack_experiment(cfg);
  EXPECT_EQ(r.preferred_before, 0u);
  EXPECT_EQ(r.preferred_after, cfg.attacker.attacker_path);
  EXPECT_GT(r.attacker_path_fraction, 0.7);
  // Users now pay the 25 ms path although 10/14 ms paths work fine.
  EXPECT_GT(r.mean_rtt_after_ms, 1.8 * r.mean_rtt_before_ms);
}

TEST(EgressAttack, SustainedTamperingVolumeIsSmall) {
  EgressExperimentConfig cfg;
  const auto r = run_egress_attack_experiment(cfg);
  // After the flip only exploration flows transit the degraded paths, so
  // total drops stay a small share of all traffic.
  EXPECT_LT(static_cast<double>(r.attacker_dropped),
            0.05 * static_cast<double>(r.packets_total));
}

}  // namespace
}  // namespace intox::egress
