#include "pcc/utility.hpp"

#include <gtest/gtest.h>

namespace intox::pcc {
namespace {

TEST(Utility, ZeroLossEqualsNearFullThroughput) {
  // sigmoid(-5) ~ 0.993: utility at zero loss is just under the rate.
  const double u = utility(10e6, 0.0);
  EXPECT_GT(u, 9.9e6);
  EXPECT_LE(u, 10e6);
}

TEST(Utility, MonotonicallyDecreasingInLoss) {
  double prev = utility(10e6, 0.0);
  for (double l = 0.005; l <= 0.2; l += 0.005) {
    const double u = utility(10e6, l);
    EXPECT_LT(u, prev) << "loss " << l;
    prev = u;
  }
}

TEST(Utility, CrashesPastTheFivePercentKnee) {
  // The sigmoid cuts utility by ~50% exactly at the knee and the loss
  // penalty drives it negative shortly after.
  EXPECT_GT(utility(10e6, 0.03), 0.0);
  EXPECT_LT(utility(10e6, 0.10), 0.0);
}

TEST(Utility, ScalesWithRateAtFixedLoss) {
  EXPECT_NEAR(utility(20e6, 0.01) / utility(10e6, 0.01), 2.0, 1e-9);
}

TEST(Utility, HigherRateWithProportionalLossCanLose) {
  // Sending 5% faster but suffering the loss that the attacker computes
  // must not look better than the slower clean rate.
  const double u_slow = utility(10e6, 0.0);
  const double needed = loss_for_target_utility(10.5e6, u_slow);
  EXPECT_GT(needed, 0.0);
  EXPECT_LE(utility(10.5e6, needed), u_slow + 1.0);
}

TEST(LossForTargetUtility, InvertsUtility) {
  const double target = utility(10e6, 0.02);
  const double l = loss_for_target_utility(10e6, target);
  EXPECT_NEAR(l, 0.02, 1e-6);
}

TEST(LossForTargetUtility, ZeroWhenAlreadyBelowTarget) {
  EXPECT_DOUBLE_EQ(loss_for_target_utility(10e6, 20e6), 0.0);
}

TEST(LossForTargetUtility, MonotoneInTarget) {
  const double l_hi = loss_for_target_utility(10e6, 8e6);
  const double l_lo = loss_for_target_utility(10e6, 2e6);
  EXPECT_LT(l_hi, l_lo);
}

}  // namespace
}  // namespace intox::pcc
