// §4.2 oscillation attack: integration tests over the full experiment
// harness (clean vs attacked runs).
#include <gtest/gtest.h>

#include "pcc/experiment.hpp"

namespace intox::pcc {
namespace {

PccExperimentConfig base_config() {
  PccExperimentConfig cfg;
  cfg.duration = sim::seconds(60);
  cfg.seed = 3;
  return cfg;
}

TEST(PccExperiment, CleanRunConvergesNearBottleneck) {
  auto cfg = base_config();
  const auto r = run_pcc_experiment(cfg);
  // Allegro runs at the loss knee: sending rate settles within ~20% of
  // the 20 Mbps bottleneck and does not wander.
  EXPECT_GT(r.mean_rate_bps, 16e6);
  EXPECT_LT(r.mean_rate_bps, 25e6);
  EXPECT_LT(r.rate_cv, 0.08);
}

TEST(PccExperiment, AttackPinsRateBelowFairShare) {
  auto cfg = base_config();
  const auto clean = run_pcc_experiment(cfg);
  cfg.attack = true;
  const auto attacked = run_pcc_experiment(cfg);
  EXPECT_LT(attacked.mean_rate_bps, 0.85 * clean.mean_rate_bps);
}

TEST(PccExperiment, AttackIncreasesOscillation) {
  auto cfg = base_config();
  const auto clean = run_pcc_experiment(cfg);
  cfg.attack = true;
  const auto attacked = run_pcc_experiment(cfg);
  // The paper's headline: fluctuation around +-5% under attack, larger
  // than the clean run's wobble.
  EXPECT_GT(attacked.rate_cv, clean.rate_cv * 1.3);
  EXPECT_GT(attacked.rate_cv, 0.03);
  EXPECT_GT(attacked.osc_amplitude, 0.05);
}

TEST(PccExperiment, AttackForcesInconclusiveExperiments) {
  auto cfg = base_config();
  cfg.attack = true;
  const auto r = run_pcc_experiment(cfg);
  // A large share of experiments must end inconclusive (that is what
  // escalates epsilon to its 5% cap).
  EXPECT_GT(r.inconclusive, 10u);
  EXPECT_GT(static_cast<double>(r.inconclusive),
            0.3 * static_cast<double>(r.inconclusive + r.decisions));
}

TEST(PccExperiment, AttackerDropsFewPackets) {
  auto cfg = base_config();
  cfg.attack = true;
  const auto r = run_pcc_experiment(cfg);
  ASSERT_GT(r.attacker_observed, 0u);
  // "tampering with only a small fraction of traffic": < 5% dropped.
  EXPECT_LT(static_cast<double>(r.attacker_dropped),
            0.05 * static_cast<double>(r.attacker_observed));
}

TEST(PccExperiment, FleetAttackRaisesDestinationFluctuation) {
  auto cfg = base_config();
  cfg.flows = 8;
  cfg.bottleneck_bps = 80e6;
  cfg.duration = sim::seconds(40);
  const auto clean = run_pcc_experiment(cfg);
  cfg.attack = true;
  const auto attacked = run_pcc_experiment(cfg);
  // Aggregate arrivals at the destination fluctuate more under attack.
  EXPECT_GT(attacked.delivered_cv, clean.delivered_cv);
}

TEST(PccExperiment, ShaperModeAlsoDisrupts) {
  auto cfg = base_config();
  cfg.attack = true;
  cfg.mitm.mode = PccMitmConfig::Mode::kShaper;
  const auto clean = run_pcc_experiment(base_config());
  const auto r = run_pcc_experiment(cfg);
  // The realistic estimator-based attacker needs no sender side channel
  // and still suppresses throughput below the clean run.
  EXPECT_LT(r.mean_rate_bps, clean.mean_rate_bps);
  EXPECT_GT(r.attacker_dropped, 0u);
}

TEST(PccExperiment, RenoBaselineRunsAndConverges) {
  auto cfg = base_config();
  cfg.kind = SenderKind::kReno;
  const auto r = run_pcc_experiment(cfg);
  EXPECT_GT(r.mean_rate_bps, 5e6);
  EXPECT_LT(r.mean_rate_bps, 30e6);
}

TEST(PccExperiment, OmniscientAttackBarelyMovesRenoThroughput) {
  // Contrast case: the PCC-specific attack logic keys on experiment
  // phases that Reno does not have; the resolver finds no PCC sender, so
  // Reno passes through unharmed. (A Reno-specific attack exists — the
  // shrew attack — but that is outside this paper.)
  auto cfg = base_config();
  cfg.kind = SenderKind::kReno;
  const auto clean = run_pcc_experiment(cfg);
  cfg.attack = true;
  const auto attacked = run_pcc_experiment(cfg);
  EXPECT_NEAR(attacked.mean_rate_bps, clean.mean_rate_bps,
              0.1 * clean.mean_rate_bps);
}

}  // namespace
}  // namespace intox::pcc
