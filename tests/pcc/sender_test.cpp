// PccSender unit tests over an ideal (lossless, fixed-delay) path.
#include "pcc/sender.hpp"

#include <gtest/gtest.h>

#include "pcc/receiver.hpp"
#include "sim/link.hpp"

namespace intox::pcc {
namespace {

struct Loop {
  sim::Scheduler sched;
  PccConfig cfg;
  std::unique_ptr<PccSender> sender;
  std::unique_ptr<PccReceiver> receiver;
  std::unique_ptr<sim::Link> fwd;
  std::unique_ptr<sim::Link> rev;

  explicit Loop(double link_bps = 100e6, double drop_every_nth = 0,
                double max_rate_bps = 1e9) {
    cfg.max_rate_bps = max_rate_bps;
    sim::LinkConfig fc;
    fc.rate_bps = link_bps;
    fc.prop_delay = sim::millis(20);
    sim::LinkConfig rc;
    rc.rate_bps = 1e9;
    rc.prop_delay = sim::millis(20);

    rev = std::make_unique<sim::Link>(sched, rc, [this](net::Packet a) {
      sender->on_ack(static_cast<std::uint32_t>(a.flow_tag), sched.now());
    });
    receiver = std::make_unique<PccReceiver>(
        [this](net::Packet a) { rev->transmit(std::move(a)); });
    fwd = std::make_unique<sim::Link>(sched, fc, [this](net::Packet d) {
      receiver->on_data(d);
    });
    if (drop_every_nth > 0) {
      fwd->set_tap([this, drop_every_nth](net::Packet&) {
        return (++tap_count_ % static_cast<int>(drop_every_nth)) == 0
                   ? sim::TapAction::kDrop
                   : sim::TapAction::kForward;
      });
    }
    net::FiveTuple t{net::Ipv4Addr{1, 1, 1, 1}, net::Ipv4Addr{2, 2, 2, 2},
                     10000, 443, net::IpProto::kUdp};
    sender = std::make_unique<PccSender>(
        sched, cfg, t, [this](net::Packet p) { fwd->transmit(std::move(p)); });
  }

  int tap_count_ = 0;
};

TEST(PccSender, StartingPhaseGrowsRate) {
  Loop loop;
  loop.sender->start();
  loop.sched.run_until(sim::seconds(3));
  loop.sender->stop();
  // From 2 Mbps, a few doublings must have happened on a clean 100 Mbps path.
  EXPECT_GT(loop.sender->rate_bps(), 8e6);
}

TEST(PccSender, TracksRttFromAcks) {
  Loop loop;
  loop.sender->start();
  loop.sched.run_until(sim::seconds(3));
  loop.sender->stop();
  // 40 ms RTT path (20 ms each way) plus serialization.
  EXPECT_NEAR(loop.sender->smoothed_rtt_seconds(), 0.040, 0.01);
}

TEST(PccSender, MonitorIntervalsAccountPackets) {
  Loop loop;
  loop.sender->start();
  loop.sched.run_until(sim::seconds(5));
  loop.sender->stop();
  ASSERT_GT(loop.sender->history().size(), 10u);
  for (const auto& mi : loop.sender->history()) {
    EXPECT_GE(mi.sent, mi.acked);
    EXPECT_GE(mi.end, mi.start);
  }
}

TEST(PccSender, LosslessPathMeansZeroMeasuredLoss) {
  // Cap the sender below the link rate so probing can never saturate the
  // queue: the path is then genuinely lossless.
  Loop loop{100e6, 0, /*max_rate_bps=*/40e6};
  loop.sender->start();
  loop.sched.run_until(sim::seconds(5));
  loop.sender->stop();
  // Skip the first few MIs (rate far below link, nothing queued): all
  // should see ~no loss.
  std::size_t lossy = 0;
  for (const auto& mi : loop.sender->history()) {
    if (mi.loss() > 0.02) ++lossy;
  }
  EXPECT_LE(lossy, loop.sender->history().size() / 10);
}

TEST(PccSender, PersistentLossDetected) {
  Loop loop{100e6, /*drop_every_nth=*/10};
  loop.sender->start();
  loop.sched.run_until(sim::seconds(5));
  loop.sender->stop();
  // Late MIs should measure ~10% loss.
  const auto& h = loop.sender->history();
  ASSERT_GT(h.size(), 10u);
  sim::RunningStats loss;
  for (std::size_t i = h.size() - 5; i < h.size(); ++i) loss.add(h[i].loss());
  EXPECT_NEAR(loss.mean(), 0.10, 0.04);
}

TEST(PccSender, EpsilonBoundedByConfig) {
  Loop loop;
  loop.sender->start();
  loop.sched.run_until(sim::seconds(10));
  loop.sender->stop();
  EXPECT_GE(loop.sender->epsilon(), loop.cfg.epsilon_min);
  EXPECT_LE(loop.sender->epsilon(), loop.cfg.epsilon_max + 1e-12);
}

TEST(PccSender, ExperimentRatesBracketBaseRate) {
  Loop loop;
  loop.sender->start();
  loop.sched.run_until(sim::seconds(10));
  loop.sender->stop();
  bool saw_up = false, saw_down = false;
  for (const auto& mi : loop.sender->history()) {
    saw_up |= mi.phase == MiPhase::kUp;
    saw_down |= mi.phase == MiPhase::kDown;
  }
  EXPECT_TRUE(saw_up);
  EXPECT_TRUE(saw_down);
}

TEST(PccSender, StopHaltsTraffic) {
  Loop loop;
  loop.sender->start();
  loop.sched.run_until(sim::seconds(1));
  loop.sender->stop();
  const auto tx = loop.fwd->counters().tx_packets;
  loop.sched.run_until(sim::seconds(2));
  EXPECT_EQ(loop.fwd->counters().tx_packets, tx);
}

}  // namespace
}  // namespace intox::pcc
