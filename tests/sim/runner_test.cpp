#include "sim/runner.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace intox::sim {
namespace {

// A deliberately uneven trial: trial i draws 100 + 37*(i % 5) variates,
// so dynamic work-claiming actually interleaves differently per thread
// count — the aggregates must not notice.
double uneven_trial(std::size_t i, Rng& rng) {
  double acc = 0.0;
  const std::size_t draws = 100 + 37 * (i % 5);
  for (std::size_t d = 0; d < draws; ++d) acc += rng.uniform();
  return acc / static_cast<double>(draws);
}

TEST(ParallelRunner, MapPreservesTrialOrder) {
  for (std::size_t threads : {1u, 2u, 8u}) {
    ParallelRunner runner{threads};
    const auto out =
        runner.map(100, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
}

TEST(ParallelRunner, SameSeedIdenticalStatsForAnyThreadCount) {
  const Rng base{2026};
  ParallelRunner serial{1};
  const RunningStats want = serial.run_stats(base, 64, uneven_trial);

  for (std::size_t threads : {2u, 8u}) {
    ParallelRunner runner{threads};
    const RunningStats got = runner.run_stats(base, 64, uneven_trial);
    // Bit-identical, not merely close: same per-trial streams, same
    // fold order.
    EXPECT_EQ(got.count(), want.count());
    EXPECT_EQ(got.mean(), want.mean());
    EXPECT_EQ(got.variance(), want.variance());
    EXPECT_EQ(got.min(), want.min());
    EXPECT_EQ(got.max(), want.max());
  }
}

TEST(ParallelRunner, SeriesAggregateIdenticalForAnyThreadCount) {
  const Rng base{7};
  auto trial = [](std::size_t, Rng& rng) {
    TimeSeries s;
    double level = 0.0;
    for (int t = 0; t <= 100; t += 5) {
      level += rng.normal(0.0, 1.0);
      s.record(seconds(t), level);
    }
    return s;
  };

  auto aggregate = [&](std::size_t threads) {
    ParallelRunner runner{threads};
    SeriesStats agg{0, seconds(100), seconds(10)};
    for (const TimeSeries& s : runner.run(base, 48, trial)) agg.add(s);
    return agg;
  };

  const SeriesStats want = aggregate(1);
  for (std::size_t threads : {2u, 8u}) {
    const SeriesStats got = aggregate(threads);
    ASSERT_EQ(got.points(), want.points());
    EXPECT_EQ(got.series_count(), want.series_count());
    for (std::size_t i = 0; i < want.points(); ++i) {
      EXPECT_EQ(got.at(i).mean(), want.at(i).mean());
      EXPECT_EQ(got.at(i).variance(), want.at(i).variance());
      EXPECT_EQ(got.at(i).min(), want.at(i).min());
      EXPECT_EQ(got.at(i).max(), want.at(i).max());
    }
  }
}

TEST(ParallelRunner, DistinctSeedsDistinctStreams) {
  ParallelRunner runner{4};
  const RunningStats a = runner.run_stats(Rng{1}, 32, uneven_trial);
  const RunningStats b = runner.run_stats(Rng{2}, 32, uneven_trial);
  EXPECT_NE(a.mean(), b.mean());
  // ...while the same seed reproduces.
  const RunningStats a2 = runner.run_stats(Rng{1}, 32, uneven_trial);
  EXPECT_EQ(a.mean(), a2.mean());
}

TEST(ParallelRunner, TrialRngMatchesForkByIndex) {
  // The contract benches rely on: trial i sees exactly base.fork(i).
  const Rng base{99};
  ParallelRunner runner{3};
  const auto draws = runner.run(
      base, 10, [](std::size_t, Rng& rng) { return rng.uniform(); });
  for (std::size_t i = 0; i < draws.size(); ++i) {
    Rng expect = base.fork(i);
    EXPECT_EQ(draws[i], expect.uniform()) << "trial " << i;
  }
}

TEST(ParallelRunner, ZeroTrialsIsANoOp) {
  ParallelRunner runner{4};
  const auto out = runner.map(0, [](std::size_t i) { return i; });
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(runner.last_report().trials, 0u);
}

TEST(ParallelRunner, ReportCountsTrialsAndClampsWorkers) {
  ParallelRunner runner{8};
  EXPECT_EQ(runner.threads(), 8u);
  runner.map(3, [](std::size_t i) { return i; });
  EXPECT_EQ(runner.last_report().trials, 3u);
  // No point spinning up more workers than trials.
  EXPECT_EQ(runner.last_report().threads, 3u);
  EXPECT_GE(runner.last_report().wall_seconds, 0.0);
}

TEST(ParallelRunner, TrialExceptionPropagates) {
  ParallelRunner runner{4};
  EXPECT_THROW(runner.map(64,
                          [](std::size_t i) -> int {
                            if (i == 13) throw std::runtime_error{"boom"};
                            return 0;
                          }),
               std::runtime_error);
}

TEST(ResolveThreads, ExplicitRequestWins) {
  setenv("INTOX_THREADS", "3", 1);
  EXPECT_EQ(resolve_threads(5), 5u);
  unsetenv("INTOX_THREADS");
}

TEST(ResolveThreads, EnvOverrideApplies) {
  setenv("INTOX_THREADS", "6", 1);
  EXPECT_EQ(resolve_threads(0), 6u);
  setenv("INTOX_THREADS", "garbage", 1);
  EXPECT_GE(resolve_threads(0), 1u);  // falls through to hardware
  unsetenv("INTOX_THREADS");
}

TEST(ResolveThreads, DefaultsToAtLeastOne) {
  unsetenv("INTOX_THREADS");
  EXPECT_GE(resolve_threads(0), 1u);
}

}  // namespace
}  // namespace intox::sim
