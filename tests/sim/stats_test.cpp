#include "sim/stats.hpp"

#include <gtest/gtest.h>

namespace intox::sim {
namespace {

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 25.0);
}

TEST(Percentile, HandlesUnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile({30, 10, 20}, 0.5), 20.0);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(TimeSeries, StepInterpolation) {
  TimeSeries ts;
  ts.record(10, 1.0);
  ts.record(20, 2.0);
  ts.record(30, 3.0);
  EXPECT_DOUBLE_EQ(ts.at(5, -1.0), -1.0);  // before first sample
  EXPECT_DOUBLE_EQ(ts.at(10), 1.0);
  EXPECT_DOUBLE_EQ(ts.at(15), 1.0);
  EXPECT_DOUBLE_EQ(ts.at(20), 2.0);
  EXPECT_DOUBLE_EQ(ts.at(1000), 3.0);
}

TEST(TimeSeries, MeanOverWindow) {
  TimeSeries ts;
  ts.record(0, 1.0);
  ts.record(10, 3.0);
  ts.record(20, 5.0);
  EXPECT_DOUBLE_EQ(ts.mean_over(0, 20), 3.0);
  EXPECT_DOUBLE_EQ(ts.mean_over(5, 15), 3.0);
  EXPECT_DOUBLE_EQ(ts.mean_over(100, 200), 0.0);
}

TEST(TimeSeries, Resample) {
  TimeSeries ts;
  ts.record(0, 1.0);
  ts.record(10, 2.0);
  auto grid = ts.resample(0, 20, 5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid[0], 1.0);
  EXPECT_DOUBLE_EQ(grid[1], 1.0);
  EXPECT_DOUBLE_EQ(grid[2], 2.0);
  EXPECT_DOUBLE_EQ(grid[4], 2.0);
}

TEST(Histogram, BucketsAndQuantile) {
  Histogram h{0.0, 10.0, 10};
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10) + 0.5);
  EXPECT_EQ(h.total(), 100u);
  for (auto c : h.buckets()) EXPECT_EQ(c, 10u);
  EXPECT_NEAR(h.quantile(0.5), 5.5, 1.0);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h{0.0, 10.0, 10};
  h.add(-5.0);
  h.add(50.0);
  EXPECT_EQ(h.buckets().front(), 1u);
  EXPECT_EQ(h.buckets().back(), 1u);
}

}  // namespace
}  // namespace intox::sim
