#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hpp"
#include "validate/invariant.hpp"

namespace intox::sim {
namespace {

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsMerge, EmptyIntoNonEmptyIsIdentity) {
  RunningStats s, empty;
  for (double x : {1.0, 2.0, 3.0}) s.add(x);
  s.merge(empty);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(RunningStatsMerge, NonEmptyIntoEmptyCopies) {
  RunningStats s, other;
  for (double x : {1.0, 2.0, 3.0}) other.add(x);
  s.merge(other);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(RunningStatsMerge, BothEmptyStaysEmpty) {
  RunningStats s, other;
  s.merge(other);
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsMerge, SingleSampleEachSide) {
  RunningStats a, b;
  a.add(2.0);
  b.add(6.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  EXPECT_DOUBLE_EQ(a.variance(), 8.0);  // ((2-4)^2 + (6-4)^2) / (2-1)
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 6.0);
}

TEST(RunningStatsMerge, MatchesSerialOnLargeSkewedSample) {
  // Chan-merge vs one serial Welford pass over 200k lognormal samples
  // (mean offset provokes the catastrophic-cancellation case the merge
  // formula exists to avoid).
  Rng rng{31};
  RunningStats serial, left, right;
  for (int i = 0; i < 200000; ++i) {
    const double x = 1e6 + rng.lognormal(0.0, 1.5);
    serial.add(x);
    (i < 150000 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), serial.count());
  EXPECT_NEAR(left.mean(), serial.mean(), std::abs(serial.mean()) * 1e-12);
  EXPECT_NEAR(left.variance(), serial.variance(),
              serial.variance() * 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), serial.min());
  EXPECT_DOUBLE_EQ(left.max(), serial.max());
}

TEST(RunningStatsMerge, ManySmallShardsMatchSerial) {
  // The parallel-sweep shape: one stats per trial, folded in order.
  Rng rng{8};
  RunningStats serial, folded;
  for (int shard = 0; shard < 64; ++shard) {
    RunningStats s;
    for (int i = 0; i <= shard; ++i) {
      const double x = rng.normal(10.0, 3.0);
      s.add(x);
      serial.add(x);
    }
    folded.merge(s);
  }
  EXPECT_EQ(folded.count(), serial.count());
  EXPECT_NEAR(folded.mean(), serial.mean(), 1e-10);
  EXPECT_NEAR(folded.variance(), serial.variance(), 1e-8);
}

TEST(SeriesStats, ResamplesOntoGridAndMerges) {
  TimeSeries a, b;
  a.record(0, 1.0);
  a.record(seconds(10), 3.0);
  b.record(0, 5.0);

  SeriesStats left{0, seconds(20), seconds(10)};
  left.add(a);
  SeriesStats right{0, seconds(20), seconds(10)};
  right.add(b);
  left.merge(right);

  ASSERT_EQ(left.points(), 3u);
  EXPECT_EQ(left.series_count(), 2u);
  EXPECT_DOUBLE_EQ(left.at(0).mean(), 3.0);  // (1 + 5) / 2
  EXPECT_DOUBLE_EQ(left.at(1).mean(), 4.0);  // (3 + 5) / 2
  EXPECT_DOUBLE_EQ(left.at(2).mean(), 4.0);  // step-extended
  EXPECT_EQ(left.time_at(2), seconds(20));
}

TEST(SeriesStats, MismatchedGridMergeRaisesInvariant) {
  // A silent no-op merge would drop the other shard's trials from the
  // sweep aggregate; the integrity layer makes it loud instead.
  validate::ScopedInvariantMode guard{validate::InvariantMode::kThrow};
  SeriesStats a{0, seconds(20), seconds(10)};
  SeriesStats b{0, seconds(30), seconds(10)};
  TimeSeries s;
  s.record(0, 1.0);
  b.add(s);
  EXPECT_THROW(a.merge(b), validate::InvariantError);
}

TEST(SeriesStats, MismatchedGridMergeCountsAndSkipsInCounterMode) {
  validate::ScopedInvariantMode guard{validate::InvariantMode::kCount};
  validate::reset_invariant_violations();
  SeriesStats a{0, seconds(20), seconds(10)};
  SeriesStats b{0, seconds(30), seconds(10)};
  TimeSeries s;
  s.record(0, 1.0);
  b.add(s);
  a.merge(b);
  EXPECT_EQ(validate::invariant_violations(), 1u);
  // Degraded path: the mismatched shard is still skipped, not mixed in.
  EXPECT_EQ(a.series_count(), 0u);
  EXPECT_EQ(a.at(0).count(), 0u);
}

TEST(HistogramMerge, AddsCountsBucketwise) {
  Histogram a{0.0, 10.0, 10}, b{0.0, 10.0, 10};
  a.add(1.5);
  b.add(1.5);
  b.add(9.5);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.buckets()[1], 2u);
  EXPECT_EQ(a.buckets()[9], 1u);
}

TEST(HistogramMerge, PreservesTotalsAndExtremes) {
  Histogram a{0.0, 10.0, 10}, b{0.0, 10.0, 10};
  a.add(-3.0);   // underflow shard a
  a.add(4.2);
  b.add(99.0);   // overflow shard b
  b.add(7.7);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.underflow(), 1u);
  EXPECT_EQ(a.overflow(), 1u);
  EXPECT_DOUBLE_EQ(a.min(), -3.0);
  EXPECT_DOUBLE_EQ(a.max(), 99.0);
}

TEST(HistogramMerge, MismatchedLayoutRaisesInvariant) {
  validate::ScopedInvariantMode guard{validate::InvariantMode::kThrow};
  Histogram a{0.0, 10.0, 10}, b{0.0, 20.0, 10};
  b.add(1.0);
  EXPECT_THROW(a.merge(b), validate::InvariantError);
}

TEST(HistogramMerge, MismatchedLayoutCountsAndSkipsInCounterMode) {
  validate::ScopedInvariantMode guard{validate::InvariantMode::kCount};
  validate::reset_invariant_violations();
  Histogram a{0.0, 10.0, 10}, b{0.0, 20.0, 10};
  b.add(1.0);
  a.merge(b);
  EXPECT_EQ(validate::invariant_violations(), 1u);
  EXPECT_EQ(a.total(), 0u);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 25.0);
}

TEST(Percentile, HandlesUnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile({30, 10, 20}, 0.5), 20.0);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(TimeSeries, StepInterpolation) {
  TimeSeries ts;
  ts.record(10, 1.0);
  ts.record(20, 2.0);
  ts.record(30, 3.0);
  EXPECT_DOUBLE_EQ(ts.at(5, -1.0), -1.0);  // before first sample
  EXPECT_DOUBLE_EQ(ts.at(10), 1.0);
  EXPECT_DOUBLE_EQ(ts.at(15), 1.0);
  EXPECT_DOUBLE_EQ(ts.at(20), 2.0);
  EXPECT_DOUBLE_EQ(ts.at(1000), 3.0);
}

TEST(TimeSeries, MeanOverIsTimeWeighted) {
  // Regression pin for the time-weighted semantics: the step function is
  // 1 on [0,10), 3 on [10,20), 5 from 20 on. The old implementation
  // averaged whichever *points* fell in the window, so a burst of
  // closely-spaced samples at one level dragged the mean toward it.
  TimeSeries ts;
  ts.record(0, 1.0);
  ts.record(10, 3.0);
  ts.record(20, 5.0);
  EXPECT_DOUBLE_EQ(ts.mean_over(0, 20), 2.0);    // (10*1 + 10*3) / 20
  EXPECT_DOUBLE_EQ(ts.mean_over(5, 15), 2.0);    // (5*1 + 5*3) / 10
  EXPECT_DOUBLE_EQ(ts.mean_over(0, 40), 3.5);    // (10*1 + 10*3 + 20*5) / 40
  EXPECT_DOUBLE_EQ(ts.mean_over(100, 200), 5.0); // step-extended last value
  EXPECT_DOUBLE_EQ(ts.mean_over(15, 15), 3.0);   // empty window: at(15)
}

TEST(TimeSeries, MeanOverIgnoresBurstySamplingBias) {
  // Level 10 for 100 ns sampled once; level 0 for the last 10 ns sampled
  // ten times. An unweighted point average would report ~0.9; the true
  // time-weighted mean is (100*10 + 10*0) / 110.
  TimeSeries ts;
  ts.record(0, 10.0);
  for (Time t = 100; t < 110; ++t) ts.record(t, 0.0);
  EXPECT_NEAR(ts.mean_over(0, 110), 1000.0 / 110.0, 1e-12);
}

TEST(TimeSeries, MeanOverWindowBeforeFirstSampleUsesZero) {
  TimeSeries ts;
  ts.record(100, 4.0);
  // [0,100) is before any sample (value 0), then 4 for the last half.
  EXPECT_DOUBLE_EQ(ts.mean_over(0, 200), 2.0);
  EXPECT_DOUBLE_EQ(ts.mean_over(0, 50), 0.0);
}

TEST(TimeSeries, RecordBackwardsRaisesInvariant) {
  validate::ScopedInvariantMode guard{validate::InvariantMode::kThrow};
  TimeSeries ts;
  ts.record(10, 1.0);
  ts.record(10, 2.0);  // equal timestamps are fine (last wins)
  EXPECT_THROW(ts.record(5, 3.0), validate::InvariantError);
}

TEST(TimeSeries, Resample) {
  TimeSeries ts;
  ts.record(0, 1.0);
  ts.record(10, 2.0);
  auto grid = ts.resample(0, 20, 5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid[0], 1.0);
  EXPECT_DOUBLE_EQ(grid[1], 1.0);
  EXPECT_DOUBLE_EQ(grid[2], 2.0);
  EXPECT_DOUBLE_EQ(grid[4], 2.0);
}

TEST(Histogram, BucketsAndQuantile) {
  Histogram h{0.0, 10.0, 10};
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10) + 0.5);
  EXPECT_EQ(h.total(), 100u);
  for (auto c : h.buckets()) EXPECT_EQ(c, 10u);
  EXPECT_NEAR(h.quantile(0.5), 5.5, 1.0);
}

TEST(Histogram, CountsOutOfRangeInDedicatedCounters) {
  // Clamping out-of-range samples into the edge buckets used to inflate
  // the edge mass and corrupt tail quantiles; they now land in dedicated
  // underflow/overflow counters and the buckets stay clean.
  Histogram h{0.0, 10.0, 10};
  h.add(-5.0);
  h.add(50.0);
  h.add(0.5);
  EXPECT_EQ(h.buckets().front(), 1u);  // only the in-range 0.5
  EXPECT_EQ(h.buckets().back(), 0u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), 50.0);
}

TEST(Histogram, QuantileExtremesMatchObservedRange) {
  Histogram h{0.0, 10.0, 10};
  h.add(2.2);
  h.add(4.4);
  h.add(9.9);
  // q=1.0 must not return a mid-bucket value below the observed max, and
  // q=0.0 must not exceed the observed min.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 9.9);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 2.2);
}

TEST(Histogram, QuantileAccountsForOutOfRangeMass) {
  Histogram h{0.0, 10.0, 10};
  for (int i = 0; i < 90; ++i) h.add(5.5);  // bucket 5
  for (int i = 0; i < 10; ++i) h.add(1e6);  // overflow tail
  EXPECT_NEAR(h.quantile(0.5), 5.5, 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 1e6);  // rank 99 is overflow mass
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1e6);
}

TEST(Histogram, NanSampleRaisesInvariant) {
  validate::ScopedInvariantMode guard{validate::InvariantMode::kThrow};
  Histogram h{0.0, 10.0, 10};
  EXPECT_THROW(h.add(std::nan("")), validate::InvariantError);
}

}  // namespace
}  // namespace intox::sim
