// Timing-wheel unit tests: level placement, cascade boundaries (level
// rollover ticks, multi-level descents, far-future overflow, kTimeMax),
// cursor-bound behavior, and slab/freelist reuse. The end-to-end
// ordering contract is exercised by the Scheduler tests and the
// differential property suite; these tests pin the wheel geometry
// itself via the TimingWheelTestPeer.
#include "sim/timing_wheel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "wheel_test_peer.hpp"
#include "validate/invariant.hpp"

namespace intox::sim {
namespace {

using Peer = TimingWheelTestPeer;

Time drain_next(TimingWheel& w, Time bound = kTimeMax) {
  TimingWheel::Callback cb;
  Time t = -1;
  if (!w.pop_min_until(bound, cb, t)) return -1;
  if (cb) cb();
  return t;
}

TEST(TimingWheel, LevelPlacementMatchesDistanceFromCursor) {
  // With the cursor at 0, an event parks at the highest level where its
  // timestamp differs from the cursor: level k spans 64^k ns.
  TimingWheel w;
  const struct {
    Time t;
    int level;
  } cases[] = {
      {0, 0},        {1, 0},          {63, 0},
      {64, 1},       {4095, 1},       // 64^2 - 1: highest differing bit 11
      {4096, 2},     {262143, 2},     // 64^3 - 1
      {262144, 3},   {kTimeMax, 10},  // bit 62 -> level 10 (overflow range)
  };
  for (const auto& c : cases) {
    const auto ref = w.insert(c.t, [] {});
    EXPECT_EQ(Peer::level_of(w, ref), c.level) << "t=" << c.t;
    ASSERT_TRUE(w.erase(ref));
  }
  EXPECT_TRUE(w.empty());
}

TEST(TimingWheel, LevelRolloverTicksFireInOrder) {
  // Events straddling every level-rollover boundary (64^k - 1, 64^k,
  // 64^k + 1) must come out in time order despite living at different
  // levels initially.
  TimingWheel w;
  std::vector<Time> times;
  for (Time boundary : {Time{64}, Time{4096}, Time{262144}, Time{16777216}}) {
    times.push_back(boundary - 1);
    times.push_back(boundary);
    times.push_back(boundary + 1);
  }
  // Insert in reverse to rule out insertion-order luck.
  for (auto it = times.rbegin(); it != times.rend(); ++it) {
    w.insert(*it, [] {});
  }
  for (Time expect : times) {
    EXPECT_EQ(drain_next(w), expect);
  }
  EXPECT_TRUE(w.empty());
}

TEST(TimingWheel, CascadeDescendsThroughAllLevels) {
  // A single event at 64^3 sits at level 3; popping it forces cascades
  // down to level 0 (each a whole-bucket redistribution), and the pop
  // must still report the exact timestamp.
  TimingWheel w;
  const Time t = 262144;  // 64^3
  const auto ref = w.insert(t, [] {});
  ASSERT_EQ(Peer::level_of(w, ref), 3);
  EXPECT_EQ(drain_next(w), t);
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.cursor(), t);
}

TEST(TimingWheel, CascadePreservesFifoWithinInstant) {
  // Many same-timestamp events parked at a high level must replay their
  // insertion order exactly after cascading to level 0 — this is the
  // property the 17 scenario parity goldens rest on.
  TimingWheel w;
  const Time t = 70000;  // level 2 from cursor 0
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    w.insert(t, [&order, i] { order.push_back(i); });
  }
  while (drain_next(w) >= 0) {
  }
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(TimingWheel, FarFutureOverflowSlotHoldsAndFires) {
  // kTimeMax lives in level 10 (the overflow range past any realistic
  // horizon) and must still fire exactly once at its timestamp.
  TimingWheel w;
  bool fired = false;
  const auto ref = w.insert(kTimeMax, [&fired] { fired = true; });
  EXPECT_EQ(Peer::level_of(w, ref), 10);
  // Bounded pops below it never disturb it.
  TimingWheel::Callback cb;
  Time t = 0;
  EXPECT_FALSE(w.pop_min_until(1'000'000'000, cb, t));
  EXPECT_TRUE(w.is_live(ref));
  EXPECT_EQ(drain_next(w, kTimeMax), kTimeMax);
  EXPECT_TRUE(fired);
  EXPECT_TRUE(w.empty());
}

TEST(TimingWheel, BoundedPopNeverOvershootsCursor) {
  // pop_min_until(bound) with nothing due must NOT advance the cursor
  // past `bound`: a later insert between `bound` and the next event
  // would otherwise land behind the cursor (an insert-invariant breach).
  TimingWheel w;
  w.insert(1000, [] {});
  TimingWheel::Callback cb;
  Time t = 0;
  EXPECT_FALSE(w.pop_min_until(500, cb, t));
  EXPECT_LE(w.cursor(), 500);
  // The late arrival in (cursor, 1000) must be accepted and fire first.
  w.insert(600, [] {});
  EXPECT_EQ(drain_next(w), 600);
  EXPECT_EQ(drain_next(w), 1000);
}

TEST(TimingWheel, EraseIsStaleSafeAndReturnsSlotsLifo) {
  TimingWheel w;
  const auto a = w.insert(10, [] {});
  EXPECT_TRUE(w.is_live(a));
  EXPECT_TRUE(w.erase(a));
  EXPECT_FALSE(w.is_live(a));
  EXPECT_FALSE(w.erase(a));  // stale: already erased
  // The freed slot is reused (LIFO) under a new generation; the old
  // handle must not alias the new tenant.
  const auto b = w.insert(20, [] {});
  EXPECT_EQ(b.index, a.index);
  EXPECT_NE(b.gen, a.gen);
  EXPECT_FALSE(w.erase(a));
  EXPECT_TRUE(w.is_live(b));
  EXPECT_EQ(w.size(), 1u);
  EXPECT_EQ(w.slab_capacity(), 1u);  // no growth across the reuse cycle
}

TEST(TimingWheel, PopReportsTheRefTheOracleMirrors) {
  TimingWheel w;
  const auto ref = w.insert(42, [] {});
  TimingWheel::Callback cb;
  Time t = 0;
  TimingWheel::Ref popped;
  ASSERT_TRUE(w.pop_min_until(kTimeMax, cb, t, &popped));
  EXPECT_EQ(t, 42);
  EXPECT_EQ(popped.index, ref.index);
  EXPECT_EQ(popped.gen, ref.gen);
}

TEST(TimingWheel, AdvanceCursorPastPendingEventIsCaught) {
  validate::ScopedInvariantMode guard{validate::InvariantMode::kThrow};
  TimingWheel w;
  w.insert(50, [] {});
  EXPECT_THROW(w.advance_cursor(100), validate::InvariantError);
}

TEST(TimingWheel, AdvanceCursorDegradedPathKeepsTheEvent) {
  // In count mode (the NDEBUG default) the misuse is recorded but the
  // event must survive: the wheel re-parks it and refuses the jump.
  validate::ScopedInvariantMode guard{validate::InvariantMode::kCount};
  validate::reset_invariant_violations();
  TimingWheel w;
  bool fired = false;
  w.insert(50, [&fired] { fired = true; });
  w.advance_cursor(100);
  EXPECT_EQ(validate::invariant_violations(), 1u);
  EXPECT_EQ(w.size(), 1u);
  EXPECT_EQ(drain_next(w), 50);
  EXPECT_TRUE(fired);
}

TEST(TimingWheel, AdvanceCursorToDrainedBoundaryAcceptsNearInserts) {
  // The normal run_until(t) sequence: drain, then advance the floor to
  // t. Inserts right at the new cursor must land at level 0.
  TimingWheel w;
  w.insert(10, [] {});
  EXPECT_EQ(drain_next(w), 10);
  w.advance_cursor(1'000'000);
  EXPECT_EQ(w.cursor(), 1'000'000);
  const auto ref = w.insert(1'000'000, [] {});
  EXPECT_EQ(Peer::level_of(w, ref), 0);
  EXPECT_EQ(drain_next(w), 1'000'000);
}

TEST(TimingWheel, MixedWorkloadMatchesSortInsertionOrderTieBreak) {
  // 1000 events over a small time range (heavy instant collisions),
  // inserted in scrambled order: pops must come out sorted by
  // (time, insertion seq).
  TimingWheel w;
  struct Expect {
    Time t;
    int label;
  };
  std::vector<Expect> inserted;
  std::uint64_t lcg = 99;
  for (int i = 0; i < 1000; ++i) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    const Time t = static_cast<Time>((lcg >> 33) % 97);
    inserted.push_back({t, i});
  }
  std::vector<int> fired;
  for (const auto& e : inserted) {
    w.insert(e.t, [&fired, label = e.label] { fired.push_back(label); });
  }
  while (drain_next(w) >= 0) {
  }
  std::vector<Expect> want = inserted;
  std::stable_sort(want.begin(), want.end(),
                   [](const Expect& a, const Expect& b) { return a.t < b.t; });
  ASSERT_EQ(fired.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(fired[i], want[i].label) << "position " << i;
  }
}

}  // namespace
}  // namespace intox::sim
