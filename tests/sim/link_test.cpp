#include "sim/link.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "sim/network.hpp"

namespace intox::sim {
namespace {

net::Packet make_packet(std::uint32_t payload = 1000) {
  net::Packet p;
  p.src = net::Ipv4Addr{1, 0, 0, 1};
  p.dst = net::Ipv4Addr{2, 0, 0, 1};
  p.l4 = net::UdpHeader{1000, 2000};
  p.payload_bytes = payload;
  return p;
}

TEST(Link, DeliversWithSerializationPlusPropagation) {
  Scheduler s;
  Time arrival = -1;
  LinkConfig cfg;
  cfg.rate_bps = 8e6;  // 1 byte per microsecond
  cfg.prop_delay = millis(1);
  Link link{s, cfg, [&](net::Packet) { arrival = s.now(); }};

  auto p = make_packet(972);  // 1000 bytes total with headers
  link.transmit(p);
  s.run();
  // 1000 B at 1 B/us = 1 ms serialization + 1 ms propagation.
  EXPECT_EQ(arrival, millis(2));
}

TEST(Link, BackToBackPacketsQueue) {
  Scheduler s;
  std::vector<Time> arrivals;
  LinkConfig cfg;
  cfg.rate_bps = 8e6;
  cfg.prop_delay = 0;
  Link link{s, cfg, [&](net::Packet) { arrivals.push_back(s.now()); }};

  link.transmit(make_packet(972));
  link.transmit(make_packet(972));
  s.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], millis(1));
  EXPECT_EQ(arrivals[1], millis(2));  // second waits for the first
}

TEST(Link, DropTailWhenQueueFull) {
  Scheduler s;
  int delivered = 0;
  LinkConfig cfg;
  cfg.rate_bps = 8e6;
  cfg.queue_limit_bytes = 2500;
  Link link{s, cfg, [&](net::Packet) { ++delivered; }};

  for (int i = 0; i < 5; ++i) link.transmit(make_packet(972));
  s.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(link.counters().dropped_queue, 3u);
  EXPECT_EQ(link.counters().tx_packets, 5u);
}

TEST(Link, RedStreamsAreDecorrelatedAcrossLinks) {
  // Regression: every link used to seed its RED RNG from the same
  // constant (0x51ed), so two links with identical backlogs dropped the
  // *same* packets in lockstep — correlated loss across a topology that
  // the experiments model as independent. Links now fork the seed with
  // a scheduler-assigned stream ordinal.
  LinkConfig cfg;
  cfg.rate_bps = 8e6;
  cfg.prop_delay = 0;
  cfg.queue_limit_bytes = 1 << 20;
  cfg.red_min_bytes = 1;       // RED active from the first queued byte
  cfg.red_max_bytes = 200000;  // gentle ramp: drops stay probabilistic
  cfg.red_max_prob = 0.5;

  auto run_pair = [&cfg] {
    Scheduler s;
    std::vector<int> got_a, got_b;
    Link a{s, cfg, [&](net::Packet) { got_a.push_back(1); }};
    Link b{s, cfg, [&](net::Packet) { got_b.push_back(1); }};
    // Identical arrival schedules: both links see the same offered load
    // at the same instants, so under the old correlated seeding their
    // drop sequences were identical.
    for (int i = 0; i < 200; ++i) {
      a.transmit(make_packet(972));
      b.transmit(make_packet(972));
    }
    s.run();
    return std::tuple{got_a.size(), got_b.size(), a.counters().dropped_red,
                      b.counters().dropped_red};
  };

  const auto [da, db, ra, rb] = run_pair();
  EXPECT_GT(ra, 0u) << "RED never fired; the test load is too light";
  EXPECT_GT(rb, 0u);
  // Decorrelated streams: with 200 Bernoulli decisions per link the
  // probability of identical drop *counts* by chance is small, and of
  // identical sequences essentially zero. Seeds are fixed, so this is a
  // deterministic assertion, not a flaky one: these exact streams
  // differ.
  EXPECT_NE(ra, rb)
      << "two same-config links produced identical RED drop sequences";

  // And the fix must not cost reproducibility: an identical topology
  // built again draws the identical per-link streams.
  const auto [da2, db2, ra2, rb2] = run_pair();
  EXPECT_EQ(da, da2);
  EXPECT_EQ(db, db2);
  EXPECT_EQ(ra, ra2);
  EXPECT_EQ(rb, rb2);
}

TEST(Link, ExplicitRedSeedStillSelectsTheStream) {
  // Scenarios that pick distinct seeds per link (pcc/experiment.cpp)
  // keep that control: changing the base seed changes the stream.
  LinkConfig cfg;
  cfg.rate_bps = 8e6;
  cfg.prop_delay = 0;
  cfg.queue_limit_bytes = 1 << 20;
  cfg.red_min_bytes = 1;
  cfg.red_max_bytes = 200000;
  cfg.red_max_prob = 0.5;

  auto drops_with_seed = [&cfg](std::uint64_t seed) {
    Scheduler s;
    LinkConfig c = cfg;
    c.red_seed = seed;
    int delivered = 0;
    Link link{s, c, [&](net::Packet) { ++delivered; }};
    for (int i = 0; i < 200; ++i) link.transmit(make_packet(972));
    s.run();
    return link.counters().dropped_red;
  };

  const auto a = drops_with_seed(1);
  const auto b = drops_with_seed(2);
  EXPECT_EQ(a, drops_with_seed(1));  // deterministic per seed
  EXPECT_NE(a, b);                   // seed still matters
}

TEST(Link, DownLinkLosesEverything) {
  Scheduler s;
  int delivered = 0;
  Link link{s, {}, [&](net::Packet) { ++delivered; }};
  link.set_up(false);
  link.transmit(make_packet());
  s.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(link.counters().dropped_down, 1u);
  link.set_up(true);
  link.transmit(make_packet());
  s.run();
  EXPECT_EQ(delivered, 1);
}

TEST(Link, TapCanDropAndMutate) {
  Scheduler s;
  std::vector<net::Packet> got;
  Link link{s, {}, [&](net::Packet p) { got.push_back(std::move(p)); }};

  int seen = 0;
  link.set_tap([&](net::Packet& p) {
    ++seen;
    if (seen % 2 == 0) return TapAction::kDrop;
    p.ttl = 7;  // MitM mutation
    return TapAction::kForward;
  });
  link.transmit(make_packet());
  link.transmit(make_packet());
  link.transmit(make_packet());
  s.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].ttl, 7);
  EXPECT_EQ(link.counters().dropped_tap, 1u);
}

TEST(Link, BacklogReportsQueuedBytes) {
  Scheduler s;
  LinkConfig cfg;
  cfg.rate_bps = 8e6;
  Link link{s, cfg, [](net::Packet) {}};
  EXPECT_DOUBLE_EQ(link.backlog_bytes(), 0.0);
  link.transmit(make_packet(972));
  EXPECT_NEAR(link.backlog_bytes(), 1000.0, 1.0);
}

class EchoNode : public Node {
 public:
  using Node::Node;
  void receive(net::Packet pkt, int port) override {
    received.push_back({std::move(pkt), port});
  }
  std::vector<std::pair<net::Packet, int>> received;
  void fire(int port, net::Packet p) { send(port, std::move(p)); }
};

TEST(Network, DuplexWiringDeliversBothWays) {
  Scheduler s;
  Network net{s};
  EchoNode a{"a"}, b{"b"};
  net.connect(a, 0, b, 0, LinkConfig{});

  a.fire(0, make_packet());
  b.fire(0, make_packet());
  s.run();
  ASSERT_EQ(a.received.size(), 1u);
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].second, 0);  // ingress port as wired
}

TEST(Network, SendOnUnwiredPortIsSilentDrop) {
  Scheduler s;
  EchoNode a{"a"};
  a.fire(3, make_packet());  // no link attached
  s.run();
  EXPECT_TRUE(a.received.empty());
}

}  // namespace
}  // namespace intox::sim
