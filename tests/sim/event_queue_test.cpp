#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "wheel_test_peer.hpp"
#include "validate/invariant.hpp"
#include "validate/oracles.hpp"

namespace intox::sim {
namespace {

TEST(Scheduler, FiresInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Scheduler, FifoWithinSameInstant) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, ScheduleAfterUsesCurrentTime) {
  Scheduler s;
  Time fired = -1;
  s.schedule_at(50, [&] {
    s.schedule_after(25, [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired, 75);
}

TEST(Scheduler, PastTimesClampToNow) {
  Scheduler s;
  Time fired = -1;
  s.schedule_at(100, [&] {
    s.schedule_at(10, [&] { fired = s.now(); });  // in the past
  });
  s.run();
  EXPECT_EQ(fired, 100);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  auto id = s.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));  // double-cancel is a no-op
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelInvalidIdReturnsFalse) {
  Scheduler s;
  EXPECT_FALSE(s.cancel({}));
  EXPECT_FALSE(s.cancel(Scheduler::EventId{12345}));
}

TEST(Scheduler, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Scheduler s;
  std::vector<Time> fired;
  s.schedule_at(10, [&] { fired.push_back(10); });
  s.schedule_at(20, [&] { fired.push_back(20); });
  s.schedule_at(30, [&] { fired.push_back(30); });
  s.run_until(20);
  EXPECT_EQ(fired, (std::vector<Time>{10, 20}));
  EXPECT_EQ(s.now(), 20);
  s.run_until(100);
  EXPECT_EQ(fired.size(), 3u);
  EXPECT_EQ(s.now(), 100);
}

TEST(Scheduler, EventsScheduledDuringRunUntilArehonored) {
  Scheduler s;
  int count = 0;
  // A self-rescheduling event every 10 ns.
  std::function<void()> tick = [&] {
    ++count;
    s.schedule_after(10, tick);
  };
  s.schedule_at(0, tick);
  s.run_until(100);
  EXPECT_EQ(count, 11);  // t = 0,10,...,100
}

TEST(Scheduler, RunLimitBounds) {
  Scheduler s;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    s.schedule_after(1, tick);
  };
  s.schedule_at(0, tick);
  EXPECT_EQ(s.run(5), 5u);
  EXPECT_EQ(count, 5);
}

TEST(Scheduler, PendingCountsLiveEventsOnly) {
  Scheduler s;
  auto a = s.schedule_at(1, [] {});
  s.schedule_at(2, [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Timer, RearmCancelsPrevious) {
  Scheduler s;
  int fires = 0;
  Timer t{s, [&] { ++fires; }};
  t.arm_after(10);
  t.arm_after(50);  // supersedes
  s.run();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(s.now(), 50);
}

TEST(Timer, CancelStopsExpiry) {
  Scheduler s;
  int fires = 0;
  Timer t{s, [&] { ++fires; }};
  t.arm_after(10);
  EXPECT_TRUE(t.armed());
  t.cancel();
  EXPECT_FALSE(t.armed());
  s.run();
  EXPECT_EQ(fires, 0);
}

TEST(Scheduler, CancelReclaimsEagerly) {
  // The timing wheel unlinks cancelled events in O(1) at cancel time, so
  // there is never a tombstone phase: pending() drops immediately and the
  // slab slot is back on the freelist before run_until ever passes the
  // deadline. (The old heap tombstoned cancels and reclaimed lazily.)
  Scheduler s;
  std::vector<Scheduler::EventId> ids;
  for (int i = 1; i <= 50; ++i) {
    ids.push_back(s.schedule_at(i * 10, [] {}));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) s.cancel(ids[i]);
  EXPECT_EQ(s.tombstones(), 0u);
  EXPECT_EQ(s.pending(), 25u);
  s.run_until(1000);
  EXPECT_EQ(s.tombstones(), 0u);
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_EQ(s.events_processed(), 25u);
}

TEST(Scheduler, CancelAfterFireKeepsPendingConsistent) {
  // Regression (pending-underflow satellite): cancelling an id that has
  // already fired must be a clean `false` and must not disturb the live
  // count. The heap implementation derived pending() by subtraction
  // (heap size minus cancel-set size), which could underflow to SIZE_MAX
  // on exactly this cancel-then-fire interleaving; the wheel counts live
  // nodes directly, and the slab generation check rejects the dead id.
  Scheduler s;
  const auto id = s.schedule_at(10, [] {});
  s.schedule_at(20, [] {});
  s.run_until(10);  // `id` fires
  EXPECT_FALSE(s.cancel(id));
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_LT(s.pending(), 1000u);  // not SIZE_MAX
  EXPECT_FALSE(s.cancel(id));  // still idempotent
  s.run();
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Scheduler, StaleHandleAfterSlotReuseIsRejected) {
  // The freelist hands a cancelled event's slab slot to the next
  // schedule. The old id carries the previous generation, so cancelling
  // it must fail — and must not kill the unrelated new tenant.
  Scheduler s;
  const auto old_id = s.schedule_at(10, [] {});
  const auto slot = SchedulerTestPeer::slab_slot(old_id);
  ASSERT_TRUE(s.cancel(old_id));
  bool fired = false;
  const auto new_id = s.schedule_at(20, [&] { fired = true; });
  ASSERT_EQ(SchedulerTestPeer::slab_slot(new_id), slot)
      << "freelist should reuse the freed slot (LIFO)";
  ASSERT_NE(old_id.value, new_id.value);  // generations differ
  EXPECT_FALSE(s.cancel(old_id));
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_TRUE(fired);
}

TEST(Scheduler, ScheduleAfterSaturatesAtTimeHorizon) {
  // Regression (saturating-add satellite): now + d used to wrap for huge
  // delays, parking the event in the deep past where the next run()
  // fired it immediately. It must instead saturate to kTimeMax ("never",
  // for any realistic horizon) and raise an invariant violation.
  validate::ScopedInvariantMode guard{validate::InvariantMode::kCount};
  validate::reset_invariant_violations();
  Scheduler s;
  s.schedule_at(100, [] {});
  s.run();  // now() == 100
  bool fired = false;
  const auto id = s.schedule_after(kTimeMax, [&] { fired = true; });
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(validate::invariant_violations(), 1u);
  s.run_until(1'000'000'000);  // a full simulated second later: still parked
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_TRUE(s.cancel(id));
}

TEST(Scheduler, TimerRearmStormLeavesNoTombstonesBehind) {
  Scheduler s;
  int fires = 0;
  Timer t{s, [&] { ++fires; }};
  for (int i = 0; i < 100; ++i) t.arm_after(10 + i);  // 99 cancels
  s.run();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(s.tombstones(), 0u);
}

TEST(Scheduler, ScheduleAtPastFromCallbackClampsAndFiresInSameRun) {
  Scheduler s;
  std::vector<Time> fired;
  s.schedule_at(100, [&] {
    fired.push_back(s.now());
    s.schedule_at(1, [&] { fired.push_back(s.now()); });  // clamped to 100
  });
  s.schedule_at(200, [&] { fired.push_back(s.now()); });
  s.run_until(150);
  // The clamped event fires at t=100, within the same run_until window,
  // before the t=200 event.
  EXPECT_EQ(fired, (std::vector<Time>{100, 100}));
  EXPECT_EQ(s.now(), 150);
}

TEST(Scheduler, CallbackSchedulingAtNowRunsAfterAlreadyQueuedPeers) {
  // FIFO-within-instant must hold even for events created *during* the
  // instant: the late arrival gets a larger seq and fires last.
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(50, [&] {
    order.push_back(0);
    s.schedule_at(50, [&] { order.push_back(2); });
  });
  s.schedule_at(50, [&] { order.push_back(1); });
  s.run_until(50);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SchedulerOracle, RandomWorkloadMatchesReferenceQueue) {
  // Differential check against the sorted-vector reference queue: drive
  // both with an identical schedule/cancel/run_until sequence (a simple
  // deterministic LCG; no nested scheduling) and compare firing logs.
  Scheduler s;
  validate::ReferenceQueue ref;
  std::vector<validate::ReferenceQueue::Fired> got;
  std::uint64_t lcg = 12345;
  auto next = [&lcg] {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return lcg >> 33;
  };
  // The wheel's slab-handle ids are not sequential, so both sides key on
  // a test-assigned label instead: the scheduler callback captures it,
  // the reference takes it via the caller-supplied-id overload.
  struct Live {
    Scheduler::EventId id;
    std::uint64_t label;
  };
  std::vector<Live> live;
  Time boundary = 0;
  std::uint64_t next_label = 1;
  for (int round = 0; round < 20; ++round) {
    for (int k = 0; k < 50; ++k) {
      const Time t = static_cast<Time>(next() % 10000);
      const std::uint64_t label = next_label++;
      const auto id = s.schedule_at(t, [&got, &s, label] {
        got.push_back({label, s.now()});
      });
      ASSERT_TRUE(id.valid());
      ref.schedule_at(t, label);
      live.push_back({id, label});
    }
    for (int k = 0; k < 10 && !live.empty(); ++k) {
      const std::size_t pick = next() % live.size();
      const bool a = s.cancel(live[pick].id);
      const bool b = ref.cancel(live[pick].label);
      EXPECT_EQ(a, b);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    boundary += static_cast<Time>(next() % 2000);
    got.clear();
    s.run_until(boundary);
    const auto want = ref.run_until(boundary);
    ASSERT_EQ(got.size(), want.size()) << "round " << round;
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id) << "round " << round << " i " << i;
      EXPECT_EQ(got[i].time, want[i].time) << "round " << round << " i " << i;
    }
    EXPECT_EQ(s.now(), ref.now());
    EXPECT_EQ(s.pending(), ref.pending());
  }
}

TEST(SchedulerIntegrity, ForcedClockCorruptionIsCaught) {
  // Inject the exact failure the monotonic-now_ invariant exists for:
  // the clock jumps past a pending event (heap-order corruption as seen
  // by run()). The invariant must trip instead of silently rewinding.
  validate::ScopedInvariantMode guard{validate::InvariantMode::kThrow};
  Scheduler s;
  s.schedule_at(10, [] {});
  SchedulerTestPeer::force_clock(s, 500);
  EXPECT_THROW(s.run(), validate::InvariantError);
}

TEST(SchedulerIntegrity, DroppedCallbackBookkeepingIsCaught) {
  validate::ScopedInvariantMode guard{validate::InvariantMode::kThrow};
  Scheduler s;
  const auto id = s.schedule_at(10, [] {});
  SchedulerTestPeer::null_callback(s, id);  // parked event, callback gone
  EXPECT_THROW(s.run(), validate::InvariantError);
}

TEST(SchedulerOracle, EnabledOracleCrossChecksWithoutDivergence) {
  // Smoke test for the always-on mirror: with the oracle armed, a mixed
  // schedule/cancel/run_until workload must complete with zero invariant
  // violations (any wheel/reference divergence would raise one).
  validate::ScopedInvariantMode guard{validate::InvariantMode::kThrow};
  Scheduler s;
  s.enable_oracle();
  ASSERT_TRUE(s.oracle_enabled());
  std::vector<Scheduler::EventId> ids;
  for (int i = 0; i < 200; ++i) {
    ids.push_back(s.schedule_at((i * 37) % 500, [] {}));
  }
  for (std::size_t i = 0; i < ids.size(); i += 3) s.cancel(ids[i]);
  s.run_until(250);
  s.schedule_after(100, [] {});
  s.run();
  EXPECT_EQ(s.pending(), 0u);
}

TEST(SchedulerIntegrity, NullCallbackIsRejected) {
  validate::ScopedInvariantMode guard{validate::InvariantMode::kThrow};
  Scheduler s;
  EXPECT_THROW(s.schedule_at(10, Scheduler::Callback{}),
               validate::InvariantError);
}

TEST(Timer, CanRearmFromCallback) {
  Scheduler s;
  int fires = 0;
  Timer* tp = nullptr;
  Timer t{s, [&] {
            if (++fires < 3) tp->arm_after(10);
          }};
  tp = &t;
  t.arm_after(10);
  s.run();
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(s.now(), 30);
}

}  // namespace
}  // namespace intox::sim
