#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace intox::sim {
namespace {

TEST(Scheduler, FiresInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Scheduler, FifoWithinSameInstant) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, ScheduleAfterUsesCurrentTime) {
  Scheduler s;
  Time fired = -1;
  s.schedule_at(50, [&] {
    s.schedule_after(25, [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired, 75);
}

TEST(Scheduler, PastTimesClampToNow) {
  Scheduler s;
  Time fired = -1;
  s.schedule_at(100, [&] {
    s.schedule_at(10, [&] { fired = s.now(); });  // in the past
  });
  s.run();
  EXPECT_EQ(fired, 100);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  auto id = s.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));  // double-cancel is a no-op
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelInvalidIdReturnsFalse) {
  Scheduler s;
  EXPECT_FALSE(s.cancel({}));
  EXPECT_FALSE(s.cancel(Scheduler::EventId{12345}));
}

TEST(Scheduler, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Scheduler s;
  std::vector<Time> fired;
  s.schedule_at(10, [&] { fired.push_back(10); });
  s.schedule_at(20, [&] { fired.push_back(20); });
  s.schedule_at(30, [&] { fired.push_back(30); });
  s.run_until(20);
  EXPECT_EQ(fired, (std::vector<Time>{10, 20}));
  EXPECT_EQ(s.now(), 20);
  s.run_until(100);
  EXPECT_EQ(fired.size(), 3u);
  EXPECT_EQ(s.now(), 100);
}

TEST(Scheduler, EventsScheduledDuringRunUntilArehonored) {
  Scheduler s;
  int count = 0;
  // A self-rescheduling event every 10 ns.
  std::function<void()> tick = [&] {
    ++count;
    s.schedule_after(10, tick);
  };
  s.schedule_at(0, tick);
  s.run_until(100);
  EXPECT_EQ(count, 11);  // t = 0,10,...,100
}

TEST(Scheduler, RunLimitBounds) {
  Scheduler s;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    s.schedule_after(1, tick);
  };
  s.schedule_at(0, tick);
  EXPECT_EQ(s.run(5), 5u);
  EXPECT_EQ(count, 5);
}

TEST(Scheduler, PendingCountsLiveEventsOnly) {
  Scheduler s;
  auto a = s.schedule_at(1, [] {});
  s.schedule_at(2, [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Timer, RearmCancelsPrevious) {
  Scheduler s;
  int fires = 0;
  Timer t{s, [&] { ++fires; }};
  t.arm_after(10);
  t.arm_after(50);  // supersedes
  s.run();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(s.now(), 50);
}

TEST(Timer, CancelStopsExpiry) {
  Scheduler s;
  int fires = 0;
  Timer t{s, [&] { ++fires; }};
  t.arm_after(10);
  EXPECT_TRUE(t.armed());
  t.cancel();
  EXPECT_FALSE(t.armed());
  s.run();
  EXPECT_EQ(fires, 0);
}

TEST(Timer, CanRearmFromCallback) {
  Scheduler s;
  int fires = 0;
  Timer* tp = nullptr;
  Timer t{s, [&] {
            if (++fires < 3) tp->arm_after(10);
          }};
  tp = &t;
  t.arm_after(10);
  s.run();
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(s.now(), 30);
}

}  // namespace
}  // namespace intox::sim
