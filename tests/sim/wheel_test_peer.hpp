// Test-only peers (friended by TimingWheel / Scheduler): expose wheel
// internals to the cascade-boundary tests and inject internal-state
// corruption so the integrity tests can prove INTOX_INVARIANT catches it.
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/timing_wheel.hpp"

namespace intox::sim {

class TimingWheelTestPeer {
 public:
  static std::uint64_t occupancy(const TimingWheel& w, int level) {
    return w.occupancy_[level];
  }
  /// level * kSlots + slot of a live event's bucket.
  static int bucket_of(const TimingWheel& w, TimingWheel::Ref ref) {
    return w.nodes_[ref.index].bucket;
  }
  static int level_of(const TimingWheel& w, TimingWheel::Ref ref) {
    return bucket_of(w, ref) / TimingWheel::kSlots;
  }
  static std::uint64_t raw_cursor(const TimingWheel& w) { return w.cursor_; }
  static std::uint32_t generation_at(const TimingWheel& w,
                                     std::uint32_t index) {
    return w.nodes_[index].gen;
  }
  /// Corruption seam: wipes a parked event's callback in place (slab
  /// bookkeeping leak) without unlinking it.
  static void null_callback(TimingWheel& w, TimingWheel::Ref ref) {
    w.nodes_[ref.index].cb = nullptr;
  }
};

class SchedulerTestPeer {
 public:
  static void force_clock(Scheduler& s, Time t) { s.now_ = t; }
  static TimingWheel& wheel(Scheduler& s) { return s.wheel_; }
  static TimingWheel::Ref decode(Scheduler::EventId id) {
    return TimingWheel::Ref{
        static_cast<std::uint32_t>((id.value & 0xffffffffull) - 1),
        static_cast<std::uint32_t>(id.value >> 32)};
  }
  /// The old "drop_callback" bookkeeping leak, wheel edition: the event
  /// stays parked but its callback is gone.
  static void null_callback(Scheduler& s, Scheduler::EventId id) {
    TimingWheelTestPeer::null_callback(s.wheel_, decode(id));
  }
  static std::uint32_t slab_slot(Scheduler::EventId id) {
    return decode(id).index;
  }
};

}  // namespace intox::sim
