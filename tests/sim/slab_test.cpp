// SlabPool tests: freelist reuse, generation-tagged stale-handle
// detection, and (in poisoned builds — Debug / the sanitizer presets)
// reuse-after-free canary checking.
#include "sim/slab.hpp"

#include <gtest/gtest.h>

#include <string>

#include "validate/invariant.hpp"

namespace intox::sim {

class SlabPoolTestPeer {
 public:
  template <typename T>
  static void scribble_canary(SlabPool<T>& pool, std::uint32_t idx) {
#ifdef INTOX_SLAB_POISON
    pool.slots_[idx].canary[0] = 0x42;
#else
    (void)pool;
    (void)idx;
#endif
  }
  template <typename T>
  static unsigned char canary_byte(const SlabPool<T>& pool,
                                   std::uint32_t idx) {
#ifdef INTOX_SLAB_POISON
    return pool.slots_[idx].canary[0];
#else
    (void)pool;
    (void)idx;
    return 0;
#endif
  }
};

namespace {

struct Probe {
  int value = 0;
  std::string tag;  // non-trivial payload: reuse must see it reset
};

TEST(SlabPool, AllocateGrowsThenReusesFreedSlotsLifo) {
  SlabPool<Probe> pool;
  const auto a = pool.allocate();
  const auto b = pool.allocate();
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.capacity(), 2u);
  pool.release(a);
  pool.release(b);
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.free_slots(), 2u);
  // LIFO: the most recently freed slot comes back first, no growth.
  const auto c = pool.allocate();
  EXPECT_EQ(c.index, b.index);
  const auto d = pool.allocate();
  EXPECT_EQ(d.index, a.index);
  EXPECT_EQ(pool.capacity(), 2u);
}

TEST(SlabPool, ReleaseResetsPayloadBeforeReuse) {
  SlabPool<Probe> pool;
  const auto h = pool.allocate();
  pool[h].value = 41;
  pool[h].tag = "previous tenant";
  pool.release(h);
  const auto h2 = pool.allocate();
  ASSERT_EQ(h2.index, h.index);
  EXPECT_EQ(pool[h2].value, 0);
  EXPECT_TRUE(pool[h2].tag.empty());
}

TEST(SlabPool, StaleHandleIsRefusedAfterReuse) {
  SlabPool<Probe> pool;
  const auto old_h = pool.allocate();
  pool.release(old_h);
  EXPECT_EQ(pool.get(old_h), nullptr);
  const auto new_h = pool.allocate();
  ASSERT_EQ(new_h.index, old_h.index);
  EXPECT_NE(new_h.generation, old_h.generation);
  // The stale handle must not alias the new tenant.
  EXPECT_EQ(pool.get(old_h), nullptr);
  EXPECT_NE(pool.get(new_h), nullptr);
}

TEST(SlabPool, DoubleReleaseIsCaught) {
  validate::ScopedInvariantMode guard{validate::InvariantMode::kThrow};
  SlabPool<Probe> pool;
  const auto h = pool.allocate();
  pool.release(h);
  EXPECT_THROW(pool.release(h), validate::InvariantError);
}

TEST(SlabPool, CheckedAccessThroughStaleHandleIsCaught) {
  validate::ScopedInvariantMode guard{validate::InvariantMode::kThrow};
  SlabPool<Probe> pool;
  const auto h = pool.allocate();
  pool.release(h);
  EXPECT_THROW((void)pool[h], validate::InvariantError);
}

TEST(SlabPoolPoison, ReleasedSlotCarriesTheCanary) {
#ifndef INTOX_SLAB_POISON
  GTEST_SKIP() << "poisoning is compiled out (NDEBUG build)";
#else
  SlabPool<Probe> pool;
  const auto h = pool.allocate();
  pool.release(h);
  EXPECT_EQ(SlabPoolTestPeer::canary_byte(pool, h.index), kSlabPoisonByte);
#endif
}

TEST(SlabPoolPoison, ScribbledCanaryIsCaughtOnReuse) {
#ifndef INTOX_SLAB_POISON
  GTEST_SKIP() << "poisoning is compiled out (NDEBUG build)";
#else
  // Simulates a use-after-free through a raw reference: something wrote
  // over a released slot. The next allocation of that slot must trip the
  // canary check instead of handing out plausible stale state.
  validate::ScopedInvariantMode guard{validate::InvariantMode::kThrow};
  SlabPool<Probe> pool;
  const auto h = pool.allocate();
  pool.release(h);
  SlabPoolTestPeer::scribble_canary(pool, h.index);
  EXPECT_THROW(pool.allocate(), validate::InvariantError);
#endif
}

}  // namespace
}  // namespace intox::sim
