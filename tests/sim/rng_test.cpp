#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include "sim/stats.hpp"

namespace intox::sim {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, ForkByLabelIsStableAndIndependent) {
  Rng root{7};
  Rng a1 = root.fork("alpha");
  Rng a2 = root.fork("alpha");
  Rng b = root.fork("beta");
  EXPECT_DOUBLE_EQ(a1.uniform(), a2.uniform());
  EXPECT_NE(a1.seed(), b.seed());
}

TEST(Rng, ForkByIndexDistinct) {
  Rng root{7};
  EXPECT_NE(root.fork(std::uint64_t{0}).seed(),
            root.fork(std::uint64_t{1}).seed());
}

TEST(Rng, ExponentialMeanConverges) {
  Rng r{123};
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(r.exponential(8.37));
  EXPECT_NEAR(s.mean(), 8.37, 0.1);
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng r{9};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    auto v = r.uniform_int(3, 6);
    ASSERT_GE(v, 3u);
    ASSERT_LE(v, 6u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ParetoRespectsScale) {
  Rng r{5};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(r.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng r{11};
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.0525);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.0525, 0.005);
}

TEST(Rng, ExpDurationPositive) {
  Rng r{3};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(r.exp_duration(kSecond), 0);
  }
}

}  // namespace
}  // namespace intox::sim
