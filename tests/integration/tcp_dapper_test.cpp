// DAPPER diagnosing *real* TCP connections from an in-path vantage point
// (link taps on both directions), with ground truth controlled via the
// substrate: clean path, lossy path, tiny receiver window.
#include <gtest/gtest.h>

#include "dapper/diagnoser.hpp"
#include "sim/link.hpp"
#include "tcp/tcp.hpp"

namespace intox {
namespace {

struct DiagnosedPipe {
  sim::Scheduler sched;
  tcp::TcpConfig cfg;
  dapper::TcpDiagnoser diagnoser{dapper::DapperConfig{}};
  std::unique_ptr<sim::Link> fwd;
  std::unique_ptr<sim::Link> rev;
  std::unique_ptr<tcp::TcpSender> sender;
  std::unique_ptr<tcp::TcpReceiver> receiver;

  explicit DiagnosedPipe(double rate_bps = 50e6) {
    sim::LinkConfig fc;
    fc.rate_bps = rate_bps;
    fc.prop_delay = sim::millis(10);
    sim::LinkConfig rc;
    rc.rate_bps = 1e9;
    rc.prop_delay = sim::millis(10);

    // The vantage point is sender-adjacent (e.g. the sender's ToR):
    // data is observed entering the forward link, ACKs are observed
    // *arriving* at the sender side. Observing ACKs at the receiver side
    // instead would under-measure flight by one path-delay's worth of
    // in-flight ACKs.
    rev = std::make_unique<sim::Link>(sched, rc, [this](net::Packet p) {
      if (const auto* t = p.tcp(); t && t->ack_flag && !t->syn) {
        diagnoser.on_ack(*t, sched.now());
      }
      sender->on_packet(p);
    });
    receiver = std::make_unique<tcp::TcpReceiver>(
        sched, cfg, [this](net::Packet p) { rev->transmit(std::move(p)); });
    fwd = std::make_unique<sim::Link>(
        sched, fc, [this](net::Packet p) { receiver->on_packet(p); });
    net::FiveTuple flow{net::Ipv4Addr{1, 1, 1, 1}, net::Ipv4Addr{2, 2, 2, 2},
                       40000, 80, net::IpProto::kTcp};
    sender = std::make_unique<tcp::TcpSender>(
        sched, cfg, flow,
        [this](net::Packet p) { fwd->transmit(std::move(p)); });

    // Data direction observed at the forward-link entry (sender side).
    fwd->set_tap([this](net::Packet& p) {
      if (const auto* t = p.tcp(); t && !t->syn) {
        diagnoser.on_data(*t, p.payload_bytes, sched.now());
      }
      return sim::TapAction::kForward;
    });
  }
};

TEST(TcpDapperIntegration, LossyPathDiagnosedNetworkLimited) {
  DiagnosedPipe pipe;
  sim::Rng rng{9};
  int taps = 0;
  // Add loss behind the vantage point — the diagnoser must infer it from
  // the retransmissions it sees, not from observing drops directly.
  // (Install the data tap *after* the diagnoser tap is replaced: combine
  // both duties here.)
  pipe.fwd->set_tap([&](net::Packet& p) {
    if (const auto* t = p.tcp(); t && !t->syn) {
      pipe.diagnoser.on_data(*t, p.payload_bytes, pipe.sched.now());
    }
    ++taps;
    if (p.payload_bytes > 0 && rng.bernoulli(0.05)) {
      return sim::TapAction::kDrop;
    }
    return sim::TapAction::kForward;
  });

  pipe.sender->start(0);
  pipe.sched.run_until(sim::seconds(20));
  pipe.sender->stop();
  EXPECT_GT(pipe.diagnoser.verdict_fraction(dapper::Verdict::kNetworkLimited),
            0.5);
}

TEST(TcpDapperIntegration, TinyReceiverWindowDiagnosedReceiverLimited) {
  DiagnosedPipe pipe{1e9};
  pipe.receiver->set_advertised_window(8 * 1448);
  pipe.sender->start(0);
  pipe.sched.run_until(sim::seconds(20));
  pipe.sender->stop();
  // The sender rams into the 8-segment advertised window continuously.
  EXPECT_GT(pipe.diagnoser.verdict_fraction(dapper::Verdict::kReceiverLimited),
            0.6);
}

TEST(TcpDapperIntegration, CleanFastPathNotBlamedOnAnyone) {
  // Plenty of bandwidth and window: the connection is healthy (cwnd
  // climbing, below the advertised window, no loss). A greedy sender
  // that has not yet filled the window may read as sender-limited early;
  // require that the *network* and *receiver* are never implicated.
  DiagnosedPipe pipe{1e9};
  pipe.sender->start(0);
  pipe.sched.run_until(sim::seconds(20));
  pipe.sender->stop();
  EXPECT_LT(pipe.diagnoser.verdict_fraction(dapper::Verdict::kNetworkLimited),
            0.1);
}

}  // namespace
}  // namespace intox
