// Cross-module failure-injection scenarios: what happens when genuine
// failures, congestion, and attacks overlap.
#include <gtest/gtest.h>

#include "blink/attacker.hpp"
#include "pcc/attacker.hpp"
#include "pcc/receiver.hpp"
#include "supervisor/blink_guard.hpp"

namespace intox {
namespace {

// --- Blink: attack and a genuine failure in the same run ---------------

TEST(FailureInjection, BlinkAttackThenRealFailureBothHandled) {
  // The attack triggers a reroute early; after restore(), a genuine
  // failure later in the run must still be detected.
  sim::Scheduler sched;
  sim::Rng rng{77};
  trafficgen::TraceConfig trace;
  trace.active_flows = 2000;
  trace.horizon = sim::seconds(300);

  blink::BlinkNode node{blink::BlinkConfig{}};
  node.monitor_prefix(trace.victim_prefix, 0, 1);
  auto sink = [&](net::Packet p) {
    dataplane::PipelineMetadata meta;
    node.process(p, meta, sched.now());
  };
  trafficgen::FlowPopulation pop{sched, rng.fork("d"), sink};
  {
    sim::Rng trng = rng.fork("t");
    for (const auto& f : trafficgen::synthesize_trace(trace, trng)) {
      pop.add_legit(f);
    }
  }
  {
    sim::Rng brng = rng.fork("b");
    trafficgen::MaliciousFlowDriver::Options opts;
    opts.send_period = trace.pkt_interval;
    for (const auto& f : trafficgen::synthesize_malicious_flows(
             trace, 105, 0, brng, blink::kMaliciousTagBase)) {
      pop.add_malicious(f, opts);
    }
  }
  pop.start_all();
  // Control plane "corrects" the bogus reroute whenever it appears.
  node.set_on_reroute([&](const blink::RerouteEvent& e) {
    sched.schedule_after(sim::seconds(5),
                         [&, prefix = e.prefix] { node.restore(prefix); });
  });
  sched.run_until(trace.horizon);
  pop.stop_all();
  // The attack re-triggers after every restore (holddown permitting):
  // multiple reroutes in one run.
  EXPECT_GE(node.reroutes().size(), 2u);
}

TEST(FailureInjection, GuardedBlinkSurvivesAttackAndCatchesRealFailure) {
  // Attack running from t=0 *and* a real failure at t=150: the guard
  // must veto the attack yet allow the genuine event. Note the genuine
  // event here happens while malicious flows are also in the sample, so
  // the implausible fraction is high — this documents the trade-off: the
  // guard errs towards safety (veto) when attack and failure coincide.
  sim::Scheduler sched;
  sim::Rng rng{88};
  trafficgen::TraceConfig trace;
  trace.active_flows = 2000;
  trace.horizon = sim::seconds(260);

  blink::BlinkNode node{blink::BlinkConfig{}};
  node.monitor_prefix(trace.victim_prefix, 0, 1);
  supervisor::BlinkRtoGuard guard;
  node.set_reroute_guard(guard.as_reroute_guard());

  auto sink = [&](net::Packet p) {
    dataplane::PipelineMetadata meta;
    node.process(p, meta, sched.now());
  };
  trafficgen::FlowPopulation pop{sched, rng.fork("d"), sink};
  {
    sim::Rng trng = rng.fork("t");
    for (const auto& f : trafficgen::synthesize_trace(trace, trng)) {
      pop.add_legit(f);
    }
  }
  {
    sim::Rng brng = rng.fork("b");
    trafficgen::MaliciousFlowDriver::Options opts;
    opts.send_period = trace.pkt_interval;
    for (const auto& f : trafficgen::synthesize_malicious_flows(
             trace, 105, 0, brng, blink::kMaliciousTagBase)) {
      pop.add_malicious(f, opts);
    }
  }
  pop.start_all();
  sched.run_until(sim::seconds(220));
  const auto vetoes_before_failure = node.vetoed();
  pop.fail_all_legit();
  sched.run_until(trace.horizon);
  pop.stop_all();

  // Before the real failure: only vetoes, no reroutes (the attack's
  // majority forms at ~140-200 s and every inference is vetoed).
  EXPECT_GT(vetoes_before_failure, 0u);
  // After the genuine mass failure the selector contains a majority of
  // *fresh* episodes from legit flows: the decision depends on how many
  // attacker cells persist. Either outcome is defensible; assert only
  // that the system did not reroute before the real failure.
  for (const auto& e : node.reroutes()) {
    EXPECT_GE(e.when, sim::seconds(220));
  }
}

// --- PCC: link failure mid-flight --------------------------------------

TEST(FailureInjection, PccCollapsesOnOutageAndRecovers) {
  sim::Scheduler sched;
  pcc::PccConfig cfg;
  cfg.seed = 6;
  sim::LinkConfig fwd;
  fwd.rate_bps = 20e6;
  fwd.prop_delay = sim::millis(20);
  fwd.red_min_bytes = 8 * 1024;
  fwd.red_max_bytes = 64 * 1024;
  fwd.queue_limit_bytes = 64 * 1024;
  sim::LinkConfig rev;
  rev.rate_bps = 1e9;
  rev.prop_delay = sim::millis(20);

  pcc::PccSender* sp = nullptr;
  sim::Link reverse{sched, rev, [&](net::Packet a) {
                      sp->on_ack(static_cast<std::uint32_t>(a.flow_tag),
                                 sched.now());
                    }};
  pcc::PccReceiver recv{[&](net::Packet a) { reverse.transmit(std::move(a)); }};
  sim::Link bottleneck{sched, fwd, [&](net::Packet d) { recv.on_data(d); }};
  net::FiveTuple t{net::Ipv4Addr{1, 1, 1, 1}, net::Ipv4Addr{2, 2, 2, 2},
                   10000, 443, net::IpProto::kUdp};
  pcc::PccSender sender{sched, cfg, t, [&](net::Packet p) {
                          bottleneck.transmit(std::move(p));
                        }};
  sp = &sender;

  sender.start();
  sched.run_until(sim::seconds(20));
  const double rate_before = sender.rate_series().at(sim::seconds(20));
  // 5-second total outage.
  bottleneck.set_up(false);
  sched.run_until(sim::seconds(25));
  bottleneck.set_up(true);
  sched.run_until(sim::seconds(26));
  const double rate_during = sender.rate_series().at(sim::seconds(26));
  sched.run_until(sim::seconds(60));
  sender.stop();
  const double rate_after = sender.rate_series().at(sim::seconds(60));

  EXPECT_GT(rate_before, 10e6);
  EXPECT_LT(rate_during, rate_before * 0.7);  // backed off hard
  EXPECT_GT(rate_after, 10e6);                // recovered
}

// --- Scheduler: cancel storm under load ---------------------------------

TEST(FailureInjection, TimerChurnUnderPacketLoad) {
  // Thousands of timers armed and re-armed while traffic flows: no
  // leaks, no stale fires.
  sim::Scheduler sched;
  std::vector<std::unique_ptr<sim::Timer>> timers;
  int fires = 0;
  for (int i = 0; i < 500; ++i) {
    timers.push_back(
        std::make_unique<sim::Timer>(sched, [&fires] { ++fires; }));
  }
  sim::Rng rng{5};
  for (int round = 0; round < 100; ++round) {
    for (auto& t : timers) {
      if (rng.bernoulli(0.5)) {
        t->arm_after(static_cast<sim::Duration>(rng.uniform_int(1, 1000)));
      } else {
        t->cancel();
      }
    }
    sched.run_until(sched.now() + 500);
  }
  for (auto& t : timers) t->cancel();
  sched.run();
  EXPECT_GT(fires, 0);
  EXPECT_EQ(sched.pending(), 0u);
}

}  // namespace
}  // namespace intox
