// Full-stack integration: real TCP connections crossing a Blink-enabled
// switch. This validates the *intended* operation of Blink over our
// whole substrate — genuine failures produce genuine RTO retransmission
// waves, Blink infers the failure and fast-reroutes, and the TCP
// connections recover over the backup path — and then contrasts it with
// the §3.1 observation that the same machinery fires on fake signals.
#include <gtest/gtest.h>

#include "blink/blink_node.hpp"
#include "dataplane/switch.hpp"
#include "sim/network.hpp"
#include "supervisor/blink_guard.hpp"
#include "tcp/tcp.hpp"

namespace intox {
namespace {

constexpr std::size_t kFlows = 80;

struct TcpBlinkWorld {
  sim::Scheduler sched;
  sim::Network net{sched};
  dataplane::CallbackNode clients{"clients", nullptr};
  dataplane::RoutedSwitch sw{"sw", sched, net::Ipv4Addr{192, 0, 2, 1}};
  dataplane::CallbackNode server_primary{"server-primary", nullptr};
  dataplane::CallbackNode server_backup{"server-backup", nullptr};
  blink::BlinkNode blink_node{blink::BlinkConfig{}};

  std::vector<std::unique_ptr<tcp::TcpSender>> senders;
  std::vector<std::unique_ptr<tcp::TcpReceiver>> receivers;
  std::unique_ptr<sim::Link> ack_path;  // server -> clients, out of band
  sim::Link* primary_link = nullptr;

  TcpBlinkWorld() {
    sim::LinkConfig fast;
    fast.rate_bps = 1e9;
    fast.prop_delay = sim::millis(5);
    net.connect(clients, 0, sw, 0, fast);
    auto duplex1 = net.connect(sw, 1, server_primary, 0, fast);
    net.connect(sw, 2, server_backup, 0, fast);
    primary_link = &duplex1.a_to_b;

    const net::Prefix victim{net::Ipv4Addr{10, 0, 0, 0}, 8};
    sw.add_route(victim, 1);
    blink_node.monitor_prefix(victim, /*primary=*/1, /*backup=*/2);
    sw.add_processor(&blink_node);

    // Out-of-band ACK return path (ACKs don't cross the Blink switch;
    // Blink only monitors the forward direction anyway).
    sim::LinkConfig ackcfg;
    ackcfg.rate_bps = 1e9;
    ackcfg.prop_delay = sim::millis(5);
    ack_path = std::make_unique<sim::Link>(
        sched, ackcfg, [this](net::Packet p) { dispatch_ack(std::move(p)); });

    // Both server nodes feed the same receiver set: the service is
    // anycast across the two paths.
    auto serve = [this](net::Packet p, int) {
      const auto* t = p.tcp();
      if (!t) return;
      const std::size_t idx = static_cast<std::size_t>(t->src_port - 40000);
      if (idx < receivers.size()) receivers[idx]->on_packet(p);
    };
    server_primary.set_handler(serve);
    server_backup.set_handler(serve);

    tcp::TcpConfig tcfg;
    for (std::size_t i = 0; i < kFlows; ++i) {
      receivers.push_back(std::make_unique<tcp::TcpReceiver>(
          sched, tcfg, [this](net::Packet p) {
            ack_path->transmit(std::move(p));
          }));
      net::FiveTuple flow{
          net::Ipv4Addr{172, 16, 0, static_cast<std::uint8_t>(i + 1)},
          net::Ipv4Addr{10, 0, 0, static_cast<std::uint8_t>(i + 1)},
          static_cast<std::uint16_t>(40000 + i), 80, net::IpProto::kTcp};
      senders.push_back(std::make_unique<tcp::TcpSender>(
          sched, tcfg, flow, [this](net::Packet p) {
            clients.inject(0, std::move(p));
          }));
      senders.back()->set_flow_tag(i);
      // Pace each flow via its receive window so the aggregate stays
      // below the link rate (clean baseline, no congestion loss).
      receivers.back()->set_advertised_window(16 * 1448);
    }
  }

  void dispatch_ack(net::Packet p) {
    const auto* t = p.tcp();
    if (!t) return;
    const std::size_t idx = static_cast<std::size_t>(t->dst_port - 40000);
    if (idx < senders.size()) senders[idx]->on_packet(p);
  }

  void start_all() {
    for (auto& s : senders) s->start(0);
  }
  std::uint64_t total_delivered() const {
    std::uint64_t sum = 0;
    for (const auto& s : senders) sum += s->delivered_bytes();
    return sum;
  }
  std::size_t established_count() const {
    std::size_t n = 0;
    for (const auto& s : senders) {
      n += s->state() == tcp::TcpState::kEstablished;
    }
    return n;
  }
};

TEST(TcpBlinkIntegration, HealthyTrafficNeverTriggersBlink) {
  TcpBlinkWorld w;
  w.start_all();
  w.sched.run_until(sim::seconds(20));
  EXPECT_EQ(w.established_count(), kFlows);
  EXPECT_TRUE(w.blink_node.reroutes().empty());
  EXPECT_GT(w.total_delivered(), 10'000'000u);
}

TEST(TcpBlinkIntegration, RealFailureDetectedAndRerouted) {
  TcpBlinkWorld w;
  w.start_all();
  w.sched.run_until(sim::seconds(10));
  ASSERT_EQ(w.established_count(), kFlows);
  const auto delivered_before = w.total_delivered();

  // Genuine failure of the primary path.
  w.primary_link->set_up(false);
  w.sched.run_until(sim::seconds(30));

  // Blink inferred the failure from the RTO retransmission wave...
  ASSERT_EQ(w.blink_node.reroutes().size(), 1u);
  const auto reroute_at = w.blink_node.reroutes()[0].when;
  EXPECT_GT(reroute_at, sim::seconds(10));
  // ... quickly: well before BGP-scale timescales (within 5 s here,
  // dominated by our 200 ms RTO floor and Blink's majority threshold).
  EXPECT_LT(reroute_at, sim::seconds(15));

  // Connections kept working over the backup path.
  const auto delivered_after = w.total_delivered();
  EXPECT_GT(delivered_after, delivered_before + 5'000'000u);
}

TEST(TcpBlinkIntegration, RtoGuardDoesNotBreakGenuineRecovery) {
  TcpBlinkWorld w;
  supervisor::BlinkRtoGuard guard;
  w.blink_node.set_reroute_guard(guard.as_reroute_guard());
  w.start_all();
  w.sched.run_until(sim::seconds(10));
  w.primary_link->set_up(false);
  w.sched.run_until(sim::seconds(30));
  // Real TCP retransmissions look like real failures to the guard.
  ASSERT_EQ(w.blink_node.reroutes().size(), 1u);
  EXPECT_EQ(w.blink_node.vetoed(), 0u);
}

}  // namespace
}  // namespace intox
