// Report merging: record order is point order, the envelope is
// deterministic, and the exit scanner reads what the known writer
// emits.
#include "sweep/merge.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "obs/report.hpp"

namespace intox::sweep {
namespace {

std::string write_temp(const char* name, const std::string& content) {
  const std::string path = ::testing::TempDir() + name;
  std::FILE* f = std::fopen(path.c_str(), "w");
  EXPECT_NE(f, nullptr);
  std::fputs(content.c_str(), f);
  std::fclose(f);
  return path;
}

TEST(Merge, ConcatenatesRecordsInPointOrder) {
  MergeInput in;
  in.scenario = "quickstart";
  in.family = "QUICKSTART";
  SweepAxis axis;
  axis.key = "flows";
  axis.values = {"1", "2"};
  in.axes = {axis};
  in.record_paths = {
      write_temp("merge_r0.json", "{\"schema\":\"x\",\"exit\":0}\n"),
      write_temp("merge_r1.json", "{\"schema\":\"y\",\"exit\":3}\n"),
  };
  std::string error;
  const std::string doc = render_merged_report(in, &error);
  ASSERT_EQ(error, "");
  EXPECT_NE(doc.find("\"schema\":\"intox.sweep_report.v1.1\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"points\":2"), std::string::npos);
  // Records appear verbatim, in order.
  const auto first = doc.find("{\"schema\":\"x\",\"exit\":0}");
  const auto second = doc.find("{\"schema\":\"y\",\"exit\":3}");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
  EXPECT_EQ(doc.back(), '\n');
  for (const std::string& p : in.record_paths) std::remove(p.c_str());
}

TEST(Merge, RecordsWithoutMetricsYieldEmptyAggregates) {
  MergeInput in;
  in.scenario = "s";
  in.family = "F";
  in.record_paths = {
      write_temp("merge_nometrics.json", "{\"schema\":\"x\",\"exit\":0}\n"),
  };
  std::string error;
  const std::string doc = render_merged_report(in, &error);
  ASSERT_EQ(error, "");
  EXPECT_NE(
      doc.find("\"aggregates\":{\"counters\":{},\"gauges\":{}}"),
      std::string::npos);
  std::remove(in.record_paths[0].c_str());
}

TEST(Merge, AggregatesFoldCountersAndGaugesAcrossPoints) {
  MergeInput in;
  in.scenario = "s";
  in.family = "F";
  in.record_paths = {
      write_temp("merge_m0.json",
                 "{\"exit\":0,\"metrics\":{\"counters\":{\"pkts\":10},"
                 "\"gauges\":{\"rate\":1.5}}}\n"),
      write_temp("merge_m1.json",
                 "{\"exit\":0,\"metrics\":{\"counters\":{\"pkts\":30},"
                 "\"gauges\":{\"rate\":0.5,\"loss\":2}}}\n"),
  };
  std::string error;
  const std::string doc = render_merged_report(in, &error);
  ASSERT_EQ(error, "");
  // pkts: both points; min 10, max 30, mean 20.
  EXPECT_NE(doc.find("\"pkts\":{\"count\":2,\"min\":10,\"max\":30,"
                     "\"mean\":20}"),
            std::string::npos)
      << doc;
  // rate: both points; loss: only one.
  EXPECT_NE(doc.find("\"rate\":{\"count\":2,\"min\":0.5,\"max\":1.5,"
                     "\"mean\":1}"),
            std::string::npos)
      << doc;
  EXPECT_NE(doc.find("\"loss\":{\"count\":1,\"min\":2,\"max\":2,"
                     "\"mean\":2}"),
            std::string::npos)
      << doc;
  for (const std::string& p : in.record_paths) std::remove(p.c_str());
}

TEST(Merge, MissingRecordIsAnError) {
  MergeInput in;
  in.scenario = "s";
  in.family = "F";
  in.record_paths = {"/nonexistent/record.json"};
  std::string error;
  EXPECT_EQ(render_merged_report(in, &error), "");
  EXPECT_NE(error.find("/nonexistent/record.json"), std::string::npos);
}

TEST(Merge, MalformedRecordIsAnError) {
  MergeInput in;
  in.scenario = "s";
  in.family = "F";
  in.record_paths = {write_temp("merge_bad.json", "not json\n")};
  std::string error;
  EXPECT_EQ(render_merged_report(in, &error), "");
  EXPECT_NE(error.find("not a JSON object"), std::string::npos);
  std::remove(in.record_paths[0].c_str());
}

TEST(Merge, CommitReportIsAtomicRename) {
  const std::string path = ::testing::TempDir() + "merge_commit.json";
  ASSERT_EQ(commit_report(path, "{\"a\":1}\n"), "");
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[32] = {};
  std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  EXPECT_STREQ(buf, "{\"a\":1}\n");
  std::remove(path.c_str());
}

TEST(Merge, ExitScannerReadsTheTopLevelField) {
  EXPECT_EQ(record_exit_code("{\"exit\":0}"), 0);
  EXPECT_EQ(record_exit_code("{\"exit\":3}"), 3);
  EXPECT_EQ(record_exit_code("{\"banner\":\"k=v\",\"exit\":2}"), 2);
  // No exit field -> fallback.
  EXPECT_EQ(record_exit_code("{}", 7), 7);
  // A *string* containing the text cannot shadow the key: the writer
  // escapes quotes, so `"exit":` inside a value appears as \"exit\".
  EXPECT_EQ(record_exit_code(
                "{\"stdout\":\"fake \\\"exit\\\": 9\",\"exit\":1}"),
            1);
}

TEST(Merge, ExitScannerMatchesThePointRecordWriter) {
  // End-to-end against the real writer: the scanner must find the exit
  // the record embeds even when stdout carries hostile text.
  const std::string path = ::testing::TempDir() + "merge_writer.json";
  obs::PointRecord record;
  record.scenario = "s";
  record.family = "F";
  record.banner = "k=1";
  record.exit_code = 4;
  record.stdout_text = "tricky \"exit\": 99 text\n";
  ASSERT_TRUE(obs::write_point_record(path, record));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string doc;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) doc.append(buf, n);
  std::fclose(f);
  EXPECT_EQ(record_exit_code(doc), 4);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace intox::sweep
