#!/usr/bin/env python3
"""Kill-resume property test for `intox sweep`.

Properties pinned here, straight from the orchestrator's contract:

  1. A sweep that is SIGKILLed mid-run and then re-invoked completes,
     and its merged report is byte-identical to the report of a sweep
     that was never interrupted.
  2. The resumed run re-executes only the missing points: the
     sweep.points_executed counter in its BENCH_SWEEP.json equals
     total - (records already committed when the kill landed), and
     sweep.points_cached equals the committed count — zero cached
     points run twice.
  3. A third invocation over the warm cache executes nothing at all.

The worker is killed with SIGKILL (no cleanup handlers), so this also
exercises the write-temp-then-rename commit: a record path either holds
a complete record or does not exist.

Usage: sweep_resume_test.py <path-to-intox-binary>
"""

import glob
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

SCENARIO = "sketch.pollution"
# ~40 ms of real work per point, so the kill below lands mid-sweep on
# any machine, fast or slow.
BASE_ARGS = ["--set", "cells=1048576", "--sweep", "seed=1:32:1"]
POINTS = 32
KILL_AFTER_S = 0.35


def fail(msg):
    print(f"sweep_resume_test: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def sweep_cmd(intox, cache, out, metrics=None):
    cmd = [intox, "sweep", SCENARIO, *BASE_ARGS, "--workers", "2",
           "--cache-dir", cache, "--out", out]
    if metrics:
        cmd += ["--metrics-out", metrics]
    return cmd


def run_sweep(intox, cache, out, metrics=None):
    env = dict(os.environ)
    env.pop("INTOX_METRICS", None)  # keep per-point reports out of cwd
    return subprocess.run(sweep_cmd(intox, cache, out, metrics),
                          capture_output=True, text=True, env=env,
                          timeout=600)


def read_counter(metrics_path, name):
    with open(metrics_path, "r", encoding="utf-8") as f:
        report = json.load(f)
    counters = report.get("metrics", {}).get("counters", {})
    if name not in counters:
        fail(f"{metrics_path}: counter {name!r} missing")
    return counters[name]


def committed_records(cache):
    # Record files are 32-hex-digit content addresses; the task file and
    # worker logs share the directory but not the pattern.
    return [p for p in glob.glob(os.path.join(cache, "*.json"))
            if len(os.path.basename(p)) == len("0" * 32 + ".json")
            and ".tmp." not in p]


def main():
    if len(sys.argv) != 2:
        fail("usage: sweep_resume_test.py <intox-binary>")
    intox = sys.argv[1]
    tmp = tempfile.mkdtemp(prefix="intox_sweep_resume_")

    clean_cache = os.path.join(tmp, "clean-cache")
    clean_out = os.path.join(tmp, "clean.json")
    kill_cache = os.path.join(tmp, "kill-cache")
    kill_out = os.path.join(tmp, "kill.json")

    # --- Reference: one uninterrupted run. ---
    res = run_sweep(intox, clean_cache, clean_out)
    if res.returncode != 0:
        fail(f"clean sweep exited {res.returncode}: {res.stderr}")
    with open(clean_out, "rb") as f:
        clean_bytes = f.read()
    clean_doc = json.loads(clean_bytes)
    if clean_doc.get("schema") != "intox.sweep_report.v1.1":
        fail(f"unexpected report schema {clean_doc.get('schema')!r}")
    if clean_doc.get("points") != POINTS:
        fail(f"expected {POINTS} points, got {clean_doc.get('points')}")
    aggregates = clean_doc.get("aggregates")
    if not isinstance(aggregates, dict) or "counters" not in aggregates:
        fail("merged report lacks cross-point aggregates")

    # --- Kill a second sweep mid-run (SIGKILL: no atexit, no flush). ---
    env = dict(os.environ)
    env.pop("INTOX_METRICS", None)
    proc = subprocess.Popen(sweep_cmd(intox, kill_cache, kill_out),
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL, env=env)
    time.sleep(KILL_AFTER_S)
    proc.send_signal(signal.SIGKILL)
    proc.wait()
    # Reap any worker children the orchestrator left behind before
    # counting records (they may still be committing their point).
    deadline = time.time() + 30
    while time.time() < deadline:
        try:
            out = subprocess.run(["pgrep", "-f", "point-record"],
                                 capture_output=True, text=True)
            if out.returncode != 0:
                break
        except FileNotFoundError:
            break
        time.sleep(0.1)

    before = len(committed_records(kill_cache))
    if before >= POINTS:
        print(f"sweep_resume_test: note: all {POINTS} points finished "
              f"before the kill; resume still verified below")
    for path in committed_records(kill_cache):
        # Commit atomicity: anything under the final name parses.
        with open(path, "r", encoding="utf-8") as f:
            record = json.load(f)
        if record.get("schema") != "intox.point_record.v1":
            fail(f"{path}: bad record schema {record.get('schema')!r}")

    # --- Resume. ---
    metrics = os.path.join(tmp, "resume_metrics.json")
    res = run_sweep(intox, kill_cache, kill_out, metrics)
    if res.returncode != 0:
        fail(f"resumed sweep exited {res.returncode}: {res.stderr}")
    with open(kill_out, "rb") as f:
        resumed_bytes = f.read()
    if resumed_bytes != clean_bytes:
        fail("resumed merged report differs from the uninterrupted run")

    cached = read_counter(metrics, "sweep.points_cached")
    executed = read_counter(metrics, "sweep.points_executed")
    if cached != before:
        fail(f"resume counted {cached} cached points, but {before} "
             f"records were committed before the kill")
    if executed != POINTS - before:
        fail(f"resume executed {executed} points, expected "
             f"{POINTS - before} (a cached point was re-run, or a "
             f"committed record was ignored)")

    # --- Warm cache: nothing executes. ---
    metrics2 = os.path.join(tmp, "warm_metrics.json")
    res = run_sweep(intox, kill_cache, kill_out, metrics2)
    if res.returncode != 0:
        fail(f"warm sweep exited {res.returncode}: {res.stderr}")
    if read_counter(metrics2, "sweep.points_executed") != 0:
        fail("warm-cache sweep re-executed points")
    if read_counter(metrics2, "sweep.points_cached") != POINTS:
        fail("warm-cache sweep did not report a full cache hit")
    with open(kill_out, "rb") as f:
        if f.read() != clean_bytes:
            fail("warm-cache merged report drifted")

    print(f"sweep_resume_test: OK ({before}/{POINTS} points survived "
          f"the kill; resume executed {executed}, re-executed 0)")


if __name__ == "__main__":
    main()
