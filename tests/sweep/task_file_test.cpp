// The flock-shared task file: claims are unique, exhaustible, and
// shared correctly between handles (the cross-process protocol, here
// exercised with two in-process handles on the same path).
#include "sweep/task_file.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace intox::sweep {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

TEST(TaskFile, ClaimsEveryEntryOnceInOrder) {
  const std::string path = temp_path("task_order");
  TaskFile tasks;
  ASSERT_EQ(tasks.create(path, {7, 3, 11}), "");
  EXPECT_EQ(tasks.remaining(), 3u);
  std::size_t idx = 0;
  ASSERT_TRUE(tasks.claim(&idx));
  EXPECT_EQ(idx, 7u);
  ASSERT_TRUE(tasks.claim(&idx));
  EXPECT_EQ(idx, 3u);
  ASSERT_TRUE(tasks.claim(&idx));
  EXPECT_EQ(idx, 11u);
  EXPECT_FALSE(tasks.claim(&idx));
  EXPECT_EQ(tasks.remaining(), 0u);
  std::remove(path.c_str());
}

TEST(TaskFile, EmptyPendingListIsImmediatelyExhausted) {
  const std::string path = temp_path("task_empty");
  TaskFile tasks;
  ASSERT_EQ(tasks.create(path, {}), "");
  std::size_t idx = 0;
  EXPECT_FALSE(tasks.claim(&idx));
  std::remove(path.c_str());
}

TEST(TaskFile, TwoHandlesShareOneCursor) {
  // A second handle attached by open() — the shape a second
  // orchestrator process takes — sees the same cursor through the file.
  const std::string path = temp_path("task_shared");
  TaskFile a, b;
  ASSERT_EQ(a.create(path, {0, 1, 2, 3}), "");
  ASSERT_EQ(b.open(path), "");
  std::size_t idx = 0;
  ASSERT_TRUE(a.claim(&idx));
  EXPECT_EQ(idx, 0u);
  ASSERT_TRUE(b.claim(&idx));
  EXPECT_EQ(idx, 1u);
  ASSERT_TRUE(a.claim(&idx));
  EXPECT_EQ(idx, 2u);
  ASSERT_TRUE(b.claim(&idx));
  EXPECT_EQ(idx, 3u);
  EXPECT_FALSE(a.claim(&idx));
  EXPECT_FALSE(b.claim(&idx));
  std::remove(path.c_str());
}

TEST(TaskFile, OpenRejectsForeignFiles) {
  const std::string path = temp_path("task_foreign");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("not a task file\n", f);
  std::fclose(f);
  TaskFile tasks;
  EXPECT_NE(tasks.open(path), "");
  std::remove(path.c_str());
}

TEST(TaskFile, ConcurrentClaimsNeverDuplicate) {
  const std::string path = temp_path("task_race");
  constexpr std::size_t kEntries = 500;
  std::vector<std::size_t> pending(kEntries);
  for (std::size_t i = 0; i < kEntries; ++i) pending[i] = i * 2;

  TaskFile tasks;
  ASSERT_EQ(tasks.create(path, pending), "");
  std::mutex mu;
  std::vector<std::size_t> claimed;
  std::vector<std::thread> pool;
  for (int t = 0; t < 8; ++t) {
    pool.emplace_back([&] {
      std::size_t idx = 0;
      while (tasks.claim(&idx)) {
        std::lock_guard<std::mutex> lock(mu);
        claimed.push_back(idx);
      }
    });
  }
  for (std::thread& t : pool) t.join();

  ASSERT_EQ(claimed.size(), kEntries);
  std::sort(claimed.begin(), claimed.end());
  EXPECT_TRUE(std::equal(claimed.begin(), claimed.end(), pending.begin()));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace intox::sweep
