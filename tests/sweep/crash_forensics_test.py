#!/usr/bin/env python3
"""Crash-forensics property test for `intox sweep`.

Pins the dump-on-failure pipeline end to end against the real binary:

  1. A worker that SIGSEGVs mid-point commits a schema-valid
     intox.flightrec.v1 dump into the sweep cache, and the orchestrator
     writes an intox.sweep_failure.v1 sidecar referencing it.
  2. `intox forensics <dump>` renders a timeline naming the scenario
     and its last recorded decisions.
  3. Re-running the sweep without the crash trigger resumes the healthy
     points from cache and produces a merged report byte-identical to a
     sweep that never crashed (the env trigger stays outside the cache
     key by design).
  4. With --trace-out, the orchestrator merges its own Chrome trace with
     every surviving worker's into one file with per-pid lanes.

Usage: crash_forensics_test.py <path-to-intox-binary>
"""

import glob
import json
import os
import subprocess
import sys
import tempfile

SCENARIO = "debug.crash"
BASE_ARGS = ["--set", "events=50000", "--sweep", "seed=1:4:1"]
POINTS = 4
CRASH_SEED = "3"


def fail(msg):
    print(f"crash_forensics_test: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run_sweep(intox, cache, out, *, crash=False, trace=None):
    env = dict(os.environ)
    env.pop("INTOX_METRICS", None)
    env.pop("INTOX_TRACE", None)
    if crash:
        env["INTOX_DEBUG_CRASH_SEED"] = CRASH_SEED
        env["INTOX_DEBUG_CRASH_MODE"] = "segv"
    else:
        env.pop("INTOX_DEBUG_CRASH_SEED", None)
        env.pop("INTOX_DEBUG_CRASH_MODE", None)
    cmd = [intox, "sweep", SCENARIO, *BASE_ARGS, "--workers", "2",
           "--cache-dir", cache, "--out", out]
    if trace:
        cmd += ["--trace-out", trace]
    return subprocess.run(cmd, capture_output=True, text=True, env=env,
                          timeout=600)


def load_json(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def main():
    if len(sys.argv) != 2:
        fail("usage: crash_forensics_test.py <intox-binary>")
    intox = sys.argv[1]
    tmp = tempfile.mkdtemp(prefix="intox_crash_forensics_")

    # --- Reference: a sweep that never crashes. ---
    ref_out = os.path.join(tmp, "ref.json")
    res = run_sweep(intox, os.path.join(tmp, "ref-cache"), ref_out)
    if res.returncode != 0:
        fail(f"reference sweep exited {res.returncode}: {res.stderr}")
    with open(ref_out, "rb") as f:
        ref_bytes = f.read()

    # --- Crash run: seed 3's worker segfaults at the midpoint. ---
    cache = os.path.join(tmp, "crash-cache")
    crash_out = os.path.join(tmp, "crash.json")
    trace_out = os.path.join(tmp, "session_trace.json")
    res = run_sweep(intox, cache, crash_out, crash=True, trace=trace_out)
    if res.returncode == 0:
        fail("crashing sweep exited 0")
    if "flight recorder dump" not in res.stderr:
        fail(f"stderr does not mention the dump:\n{res.stderr}")

    sidecars = glob.glob(os.path.join(cache, "*.fail.json"))
    if len(sidecars) != 1:
        fail(f"expected exactly 1 failure sidecar, found {sidecars}")
    sidecar = load_json(sidecars[0])
    if sidecar.get("schema") != "intox.sweep_failure.v1":
        fail(f"bad sidecar schema {sidecar.get('schema')!r}")
    if sidecar.get("scenario") != SCENARIO:
        fail(f"sidecar names scenario {sidecar.get('scenario')!r}")
    dump_path = sidecar.get("flightrec")
    if not dump_path or not os.path.exists(dump_path):
        fail(f"sidecar flightrec reference {dump_path!r} does not exist")

    dump = load_json(dump_path)
    if dump.get("schema") != "intox.flightrec.v1":
        fail(f"bad dump schema {dump.get('schema')!r}")
    if dump.get("scenario") != SCENARIO:
        fail(f"dump names scenario {dump.get('scenario')!r}")
    if dump.get("reason") != "signal:SIGSEGV":
        fail(f"dump reason {dump.get('reason')!r}")

    # --- The forensics renderer names the last decisions. ---
    res = subprocess.run([intox, "forensics", dump_path],
                         capture_output=True, text=True, timeout=120)
    if res.returncode != 0:
        fail(f"forensics exited {res.returncode}: {res.stderr}")
    for needle in (SCENARIO, "signal:SIGSEGV", "note", "sched.fire"):
        if needle not in res.stdout:
            fail(f"forensics timeline lacks {needle!r}:\n{res.stdout}")

    # --- Forensics Chrome-trace rendering parses. ---
    fr_trace = os.path.join(tmp, "dump_trace.json")
    res = subprocess.run([intox, "forensics", dump_path, "--trace-out",
                          fr_trace], capture_output=True, text=True,
                         timeout=120)
    if res.returncode != 0:
        fail(f"forensics --trace-out exited {res.returncode}: {res.stderr}")
    events = load_json(fr_trace).get("traceEvents")
    if not events:
        fail("forensics trace has no events")

    # --- Merged session trace: orchestrator + surviving workers. ---
    session = load_json(trace_out)
    events = session.get("traceEvents")
    if not events:
        fail("merged session trace has no events")
    pids = {e.get("pid") for e in events}
    if len(pids) < 2:
        fail(f"expected per-pid lanes from at least 2 processes, "
             f"got pids {pids}")
    if not any(e.get("ph") == "M" and e.get("name") == "process_name"
               for e in events):
        fail("merged session trace lacks process_name metadata")

    # --- Resume without the trigger: byte-identical merged report. ---
    res = run_sweep(intox, cache, crash_out)
    if res.returncode != 0:
        fail(f"resumed sweep exited {res.returncode}: {res.stderr}")
    with open(crash_out, "rb") as f:
        resumed_bytes = f.read()
    if resumed_bytes != ref_bytes:
        fail("resumed merged report differs from the crash-free run")
    # The healthy point's sidecar/dump must not outlive its clean rerun.
    if glob.glob(os.path.join(cache, "*.fail.json")):
        fail("failure sidecar survived a successful rerun")
    if glob.glob(os.path.join(cache, "*.flightrec.json")):
        fail("stale flight-recorder dump survived a successful rerun")

    print("crash_forensics_test: OK (dump committed, sidecar linked, "
          "forensics rendered, resume byte-identical)")


if __name__ == "__main__":
    main()
