// The content-addressed point cache: keys must move when anything that
// determines a point's output moves, and must not move otherwise.
#include "sweep/cache.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace intox::sweep {
namespace {

using KnobVec = std::vector<std::pair<std::string, std::string>>;

TEST(CacheKey, IsDeterministic) {
  const KnobVec knobs{{"flows", "4"}, {"seed", "42"}};
  const CacheKey a = point_cache_key(1, "quickstart", knobs);
  const CacheKey b = point_cache_key(1, "quickstart", knobs);
  EXPECT_EQ(a.hex(), b.hex());
  EXPECT_EQ(a.hex().size(), 32u);
}

TEST(CacheKey, MovesWithEveryInput) {
  const KnobVec knobs{{"flows", "4"}, {"seed", "42"}};
  const std::string base = point_cache_key(1, "quickstart", knobs).hex();
  EXPECT_NE(point_cache_key(2, "quickstart", knobs).hex(), base);
  EXPECT_NE(point_cache_key(1, "quickstart2", knobs).hex(), base);
  EXPECT_NE(point_cache_key(1, "quickstart",
                            KnobVec{{"flows", "5"}, {"seed", "42"}})
                .hex(),
            base);
  EXPECT_NE(point_cache_key(1, "quickstart",
                            KnobVec{{"flows", "4"}, {"seed", "43"}})
                .hex(),
            base);
}

TEST(CacheKey, KnobFramingIsInjective) {
  // ("a", "b\nc=d") must not collide with ("a", "b") + ("c", "d").
  const std::string one =
      point_cache_key(0, "s", KnobVec{{"a", "b\nc=d"}}).hex();
  const std::string two =
      point_cache_key(0, "s", KnobVec{{"a", "b"}, {"c", "d"}}).hex();
  EXPECT_NE(one, two);
}

TEST(BinaryFingerprint, IsStableWithinAProcess) {
  const std::uint64_t a = binary_fingerprint();
  const std::uint64_t b = binary_fingerprint();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, 0u);  // /proc/self/exe is readable on the CI platforms
}

TEST(PointCache, PathsAndPresence) {
  const std::string dir =
      ::testing::TempDir() + "intox_cache_test/nested";
  PointCache cache{dir};
  ASSERT_EQ(cache.ensure_dir(), "");
  const CacheKey key{0x1234, 0xabcd};
  EXPECT_EQ(cache.record_path(key), dir + "/" + key.hex() + ".json");
  EXPECT_EQ(cache.log_path(key), dir + "/" + key.hex() + ".log");
  EXPECT_FALSE(cache.has(key));
  std::FILE* f = std::fopen(cache.record_path(key).c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("{}", f);
  std::fclose(f);
  EXPECT_TRUE(cache.has(key));
  std::remove(cache.record_path(key).c_str());
}

TEST(PointCache, EnsureDirFailsInsideAFile) {
  const std::string file = ::testing::TempDir() + "intox_cache_not_a_dir";
  std::FILE* f = std::fopen(file.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  PointCache cache{file + "/sub"};
  EXPECT_NE(cache.ensure_dir(), "");
  std::remove(file.c_str());
}

}  // namespace
}  // namespace intox::sweep
