// Sweep-point enumeration, including the endpoint regression: the old
// driver accumulated `v += step`, so floating-point drift dropped or
// duplicated range endpoints on long sweeps. Values now come from the
// integer index (`lo + i * step`), which these tests pin.
#include "sweep/point.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "scenario/knob.hpp"

namespace intox::sweep {
namespace {

scenario::KnobSet test_knobs() {
  scenario::KnobSet knobs;
  knobs.declare_double("ratio", 0.5, "a double knob");
  knobs.declare_u64("count", 1, "a u64 knob");
  knobs.declare_bool("flag", false, "a bool knob");
  knobs.declare_string("name", "x", "a string knob");
  return knobs;
}

std::vector<std::string> axis_values(const std::string& spec) {
  const scenario::KnobSet knobs = test_knobs();
  SweepAxis axis;
  const std::string err = parse_sweep_axis(spec, knobs, &axis);
  EXPECT_EQ(err, "") << spec;
  return axis.values;
}

TEST(SweepAxis, TenthStepsIncludeTheEndpoint) {
  // 0.1 is not representable in binary; the accumulating loop ended at
  // 0.9999999999999999 and dropped the final point.
  const auto values = axis_values("ratio=0:1:0.1");
  ASSERT_EQ(values.size(), 11u);
  EXPECT_EQ(values.front(), "0");
  EXPECT_EQ(values[1], "0.1");
  EXPECT_EQ(values.back(), "1");
}

TEST(SweepAxis, TenThousandStepsStayEndpointExact) {
  // The regression range from the issue: 1e4 accumulations of 0.001
  // drift by ~1e-13 — enough to lose the endpoint behind the old
  // `step * 1e-9` epsilon. Index arithmetic keeps the count exact and
  // the last value is snapped onto the declared endpoint.
  const auto values = axis_values("ratio=0:10:0.001");
  ASSERT_EQ(values.size(), 10001u);
  EXPECT_EQ(values.front(), "0");
  EXPECT_EQ(values.back(), "10");
}

TEST(SweepAxis, IntegerRangeIsExact) {
  const auto values = axis_values("count=1:4:1");
  ASSERT_EQ(values.size(), 4u);
  EXPECT_EQ(values.front(), "1");
  EXPECT_EQ(values.back(), "4");
}

TEST(SweepAxis, DegenerateRangeIsOnePoint) {
  const auto values = axis_values("count=5:5:1");
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values.front(), "5");
}

TEST(SweepAxis, StepLargerThanSpanIsOnePoint) {
  const auto values = axis_values("ratio=0.25:0.75:2");
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values.front(), "0.25");
}

TEST(SweepAxis, RejectsNonNumericKnobs) {
  const scenario::KnobSet knobs = test_knobs();
  SweepAxis axis;
  EXPECT_NE(parse_sweep_axis("flag=0:1:1", knobs, &axis), "");
  EXPECT_NE(parse_sweep_axis("name=0:1:1", knobs, &axis), "");
}

TEST(SweepAxis, RejectsNonIntegerValuesForU64Knobs) {
  const scenario::KnobSet knobs = test_knobs();
  SweepAxis axis;
  EXPECT_NE(parse_sweep_axis("count=1:2:0.5", knobs, &axis), "");
}

TEST(SweepPoints, CountIsTheCrossProduct) {
  const scenario::KnobSet knobs = test_knobs();
  SweepAxis a, b;
  ASSERT_EQ(parse_sweep_axis("count=1:3:1", knobs, &a), "");
  ASSERT_EQ(parse_sweep_axis("ratio=0:1:0.5", knobs, &b), "");
  EXPECT_EQ(point_count({}), 1u);  // the base config is one point
  EXPECT_EQ(point_count({a}), 3u);
  EXPECT_EQ(point_count({a, b}), 9u);
}

TEST(SweepPoints, CountOverflowsToZero) {
  SweepAxis big;
  big.key = "count";
  big.values.assign(100000, "1");
  EXPECT_EQ(point_count({big, big}), 0u);  // 1e10 > kMaxSweepPoints
}

TEST(SweepPoints, LastAxisVariesFastest) {
  const scenario::KnobSet knobs = test_knobs();
  SweepAxis a, b;
  ASSERT_EQ(parse_sweep_axis("count=1:2:1", knobs, &a), "");
  ASSERT_EQ(parse_sweep_axis("ratio=0:1:1", knobs, &b), "");
  const std::vector<SweepAxis> axes{a, b};
  EXPECT_EQ(point_banner(point_at(axes, 0)), "count=1 ratio=0");
  EXPECT_EQ(point_banner(point_at(axes, 1)), "count=1 ratio=1");
  EXPECT_EQ(point_banner(point_at(axes, 2)), "count=2 ratio=0");
  EXPECT_EQ(point_banner(point_at(axes, 3)), "count=2 ratio=1");
}

TEST(SweepPoints, EmptyAxesYieldTheEmptyPoint) {
  const Point p = point_at({}, 0);
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(point_banner(p), "");
}

}  // namespace
}  // namespace intox::sweep
