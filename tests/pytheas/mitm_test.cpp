// §4.1 MitM variant: honest reports, genuinely degraded traffic for a
// subset of members — the group decision punishes everyone.
#include <gtest/gtest.h>

#include "pytheas/experiment.hpp"

namespace intox::pytheas {
namespace {

TEST(MitmQoe, SubsetDegradationFlipsWholeGroup) {
  MitmQoeConfig cfg;
  const auto r = run_mitm_qoe_experiment(cfg);
  EXPECT_GT(r.flipped_fraction, 0.8);
}

TEST(MitmQoe, UntouchedMembersSufferCollateralDamage) {
  MitmQoeConfig cfg;
  const auto r = run_mitm_qoe_experiment(cfg);
  // 55% of the group never had a packet dropped, yet their QoE falls to
  // the bad arm's level because the *group* decision moved.
  EXPECT_GT(r.untouched_before, 4.2);
  EXPECT_LT(r.untouched_after, r.untouched_before - 1.0);
}

TEST(MitmQoe, TamperingShareIsMinority) {
  MitmQoeConfig cfg;
  const auto r = run_mitm_qoe_experiment(cfg);
  // Only victims-on-the-good-arm sessions are touched, and after the
  // flip the good arm carries almost nobody: the time-averaged touched
  // share is well under the victim fraction.
  EXPECT_LT(r.touched_share, cfg.victim_fraction * 0.6);
}

TEST(MitmQoe, SmallVictimSubsetIsInsufficient) {
  // The flip needs enough mass to drag the group mean below the bad
  // arm's quality — a 10% subset cannot (the dual of the botnet
  // amplification result: the MitM cannot amplify honest reports).
  MitmQoeConfig cfg;
  cfg.victim_fraction = 0.1;
  const auto r = run_mitm_qoe_experiment(cfg);
  EXPECT_LT(r.flipped_fraction, 0.1);
  EXPECT_GT(r.untouched_after, 4.0);
}

TEST(MitmQoe, NoAttackNoHarm) {
  MitmQoeConfig cfg;
  cfg.attack_start_epoch = cfg.epochs + 1;
  const auto r = run_mitm_qoe_experiment(cfg);
  EXPECT_LT(r.flipped_fraction, 0.05);
  EXPECT_NEAR(r.untouched_after, r.untouched_before, 0.2);
}

}  // namespace
}  // namespace intox::pytheas
