#include "pytheas/ucb.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace intox::pytheas {
namespace {

TEST(DiscountedUcb, UnexploredArmsAreOptimistic) {
  DiscountedUcb b{3, UcbConfig{}};
  // With no data, every arm has the same (optimistic) score; best_arm
  // returns the first.
  EXPECT_EQ(b.best_arm(), 0u);
  EXPECT_DOUBLE_EQ(b.mean(2), UcbConfig{}.initial_optimism);
}

TEST(DiscountedUcb, LearnsTheBetterArm) {
  DiscountedUcb b{2, UcbConfig{}};
  for (int i = 0; i < 100; ++i) {
    b.observe(0, 4.5);
    b.observe(1, 3.0);
  }
  EXPECT_EQ(b.best_arm(), 0u);
  EXPECT_NEAR(b.mean(0), 4.5, 1e-9);
  EXPECT_NEAR(b.mean(1), 3.0, 1e-9);
}

TEST(DiscountedUcb, DiscountForgetsOldEvidence) {
  UcbConfig cfg;
  cfg.discount = 0.9;
  DiscountedUcb b{2, cfg};
  for (int i = 0; i < 50; ++i) {
    b.observe(0, 5.0);
    b.observe(1, 1.0);
    b.decay();
  }
  // Conditions invert; the discounted mean must cross over quickly.
  for (int i = 0; i < 30; ++i) {
    b.observe(0, 1.0);
    b.observe(1, 5.0);
    b.decay();
  }
  EXPECT_EQ(b.best_arm(), 1u);
}

TEST(DiscountedUcb, ExplorationBonusLiftsUndersampledArms) {
  UcbConfig cfg;
  cfg.exploration_bonus = 2.0;
  DiscountedUcb b{2, cfg};
  // Arm 0 slightly better but heavily sampled; arm 1 sampled once.
  for (int i = 0; i < 1000; ++i) b.observe(0, 3.1);
  b.observe(1, 3.0);
  EXPECT_GT(b.ucb_score(1), b.ucb_score(0));
}

TEST(DiscountedUcb, EffectiveCountDecays) {
  DiscountedUcb b{1, UcbConfig{.discount = 0.5}};
  b.observe(0, 1.0);
  EXPECT_DOUBLE_EQ(b.effective_count(0), 1.0);
  b.decay();
  EXPECT_DOUBLE_EQ(b.effective_count(0), 0.5);
}

TEST(DiscountedUcb, PoisonedReportsMoveTheMean) {
  // The §4.1 mechanism in isolation: a minority of extreme reports moves
  // a discounted mean across a decision boundary.
  DiscountedUcb b{2, UcbConfig{}};
  for (int i = 0; i < 60; ++i) b.observe(0, 4.5);   // honest: good arm
  for (int i = 0; i < 60; ++i) b.observe(1, 3.0);   // honest: bad arm
  for (int i = 0; i < 40; ++i) b.observe(0, 0.0);   // bots slam the good arm
  for (int i = 0; i < 40; ++i) b.observe(1, 5.0);   // and boost the bad one
  EXPECT_EQ(b.best_arm(), 1u);
}

}  // namespace
}  // namespace intox::pytheas
