// §4.1 attacks end-to-end: report poisoning and CDN stampede.
#include <gtest/gtest.h>

#include "pytheas/experiment.hpp"

namespace intox::pytheas {
namespace {

TEST(PoisonAttack, NoBotsNoHarm) {
  PoisonConfig cfg;
  cfg.bot_sessions = 0;
  const auto r = run_poisoning_experiment(cfg);
  EXPECT_NEAR(r.mean_qoe_after, r.mean_qoe_before, 0.25);
  EXPECT_LT(r.flipped_fraction, 0.1);
}

TEST(PoisonAttack, ModestBotnetFlipsGroupDecision) {
  PoisonConfig cfg;
  cfg.bot_sessions = 40;  // 17% of clients, 3x report amplification
  const auto r = run_poisoning_experiment(cfg);
  EXPECT_GT(r.flipped_fraction, 0.8);
  // Every legitimate client now gets the bad arm: QoE collapses towards
  // the bad arm's base quality (3.0 vs 4.5).
  EXPECT_LT(r.mean_qoe_after, r.mean_qoe_before - 1.0);
}

TEST(PoisonAttack, AmplificationSubstitutesForBots) {
  // Fewer bots with more reports each achieve the same flip — reports
  // are unauthenticated, so nothing ties volume to client count.
  PoisonConfig cfg;
  cfg.bot_sessions = 12;  // 5.7% of clients
  cfg.bot_amplification = 12;
  const auto r = run_poisoning_experiment(cfg);
  EXPECT_GT(r.flipped_fraction, 0.8);
}

TEST(PoisonAttack, HarmScalesWithBotFraction) {
  double prev_after = 10.0;
  for (std::size_t bots : {0u, 20u, 40u}) {
    PoisonConfig cfg;
    cfg.bot_sessions = bots;
    const auto r = run_poisoning_experiment(cfg);
    EXPECT_LE(r.mean_qoe_after, prev_after + 0.3) << bots << " bots";
    prev_after = r.mean_qoe_after;
  }
}

// Site 0 is big enough for everyone (capacity 400); site 1 is not
// (capacity 200). Without interference all 300 sessions fit happily on
// site 0; the throttle attack herds them onto the small site.
CdnConfig cdn_scenario() {
  CdnConfig cfg;
  cfg.model.arm_base = {4.5, 4.0};
  cfg.model.arm_capacity = {400.0, 200.0};
  return cfg;
}

TEST(CdnAttack, ThrottleStampedesGroupsToOtherSite) {
  CdnConfig cfg = cdn_scenario();
  const auto r = run_cdn_experiment(cfg);
  // After the throttle on site 0, nearly everyone exploits site 1 ...
  const double site1_end = r.site1_load.points().back().second;
  EXPECT_GT(site1_end, 250.0);
  // ... which is pushed past its capacity.
  EXPECT_GT(r.site1_peak_overload, 1.2);
}

TEST(CdnAttack, QoeDegradesDespiteUntouchedSite) {
  CdnConfig cfg = cdn_scenario();
  const auto r = run_cdn_experiment(cfg);
  EXPECT_LT(r.qoe_after, r.qoe_before - 0.15);
}

TEST(CdnAttack, NoAttackStaysBalancedAndHealthy) {
  CdnConfig cfg = cdn_scenario();
  cfg.attack_start_epoch = cfg.epochs + 1;  // never
  const auto r = run_cdn_experiment(cfg);
  EXPECT_LT(r.site1_peak_overload, 1.0);
  // Everyone stays on the big healthy site.
  EXPECT_GT(r.site0_load.points().back().second, 250.0);
}

}  // namespace
}  // namespace intox::pytheas
