#include "pytheas/engine.hpp"

#include <gtest/gtest.h>

namespace intox::pytheas {
namespace {

const SessionFeatures kGroupA{.asn = 1, .location = "zrh", .content = "vod"};
const SessionFeatures kGroupB{.asn = 2, .location = "nyc", .content = "vod"};

EngineConfig two_arm_config() {
  EngineConfig c;
  c.arms = 2;
  c.exploration_fraction = 0.0;  // deterministic assignment in unit tests
  return c;
}

TEST(PytheasEngine, GroupsBySessionFeatures) {
  PytheasEngine e{two_arm_config()};
  e.join(1, kGroupA);
  e.join(2, kGroupA);
  e.join(3, kGroupB);
  EXPECT_EQ(e.group_count(), 2u);
}

TEST(PytheasEngine, DecisionsAreGroupGranularity) {
  PytheasEngine e{two_arm_config()};
  e.join(1, kGroupA);
  e.join(2, kGroupA);
  // Feed reports showing arm 1 is better for group A.
  for (int i = 0; i < 50; ++i) {
    e.report({1, 0, 2.0, 0});
    e.report({2, 1, 4.5, 0});
  }
  e.end_epoch();
  EXPECT_EQ(e.group_best_arm(kGroupA), 1u);
  EXPECT_EQ(e.assignment(1), 1u);
  EXPECT_EQ(e.assignment(2), 1u);
}

TEST(PytheasEngine, GroupsAreIsolated) {
  PytheasEngine e{two_arm_config()};
  e.join(1, kGroupA);
  e.join(2, kGroupB);
  for (int i = 0; i < 50; ++i) {
    e.report({1, 1, 5.0, 0});  // group A: arm 1 great
    e.report({2, 0, 5.0, 0});  // group B: arm 0 great
    e.report({1, 0, 1.0, 0});
    e.report({2, 1, 1.0, 0});
  }
  e.end_epoch();
  EXPECT_EQ(e.group_best_arm(kGroupA), 1u);
  EXPECT_EQ(e.group_best_arm(kGroupB), 0u);
}

TEST(PytheasEngine, ExplorationAssignsMinorityElsewhere) {
  EngineConfig cfg = two_arm_config();
  cfg.exploration_fraction = 0.2;
  cfg.seed = 5;
  PytheasEngine e{cfg};
  for (SessionId s = 1; s <= 200; ++s) e.join(s, kGroupA);
  for (int i = 0; i < 50; ++i) e.report({1, 0, 5.0, 0});
  e.end_epoch();
  std::size_t on_best = 0;
  for (SessionId s = 1; s <= 200; ++s) on_best += (e.assignment(s) == 0u);
  EXPECT_GT(on_best, 150u);
  EXPECT_LT(on_best, 200u);  // some sessions must be exploring
}

TEST(PytheasEngine, LeaveRemovesSession) {
  PytheasEngine e{two_arm_config()};
  e.join(1, kGroupA);
  e.leave(1);
  // Reports from departed sessions are ignored.
  e.report({1, 0, 0.0, 0});
  e.end_epoch();
  const auto* bandit = e.group_bandit(kGroupA);
  ASSERT_NE(bandit, nullptr);
  EXPECT_LT(bandit->effective_count(0), 1e-9);
}

class RejectAll : public ReportFilter {
 public:
  bool admit(const SessionFeatures&, const QoeReport&) override {
    return false;
  }
};

TEST(PytheasEngine, FilterQuarantinesReports) {
  PytheasEngine e{two_arm_config()};
  e.set_filter(std::make_shared<RejectAll>());
  e.join(1, kGroupA);
  for (int i = 0; i < 10; ++i) e.report({1, 0, 0.0, 0});
  EXPECT_EQ(e.filtered_reports(), 10u);
  const auto* bandit = e.group_bandit(kGroupA);
  EXPECT_LT(bandit->effective_count(0), 1e-9);
}

TEST(PytheasEngine, EpochReportsVisibleUntilEpochEnd) {
  PytheasEngine e{two_arm_config()};
  e.join(1, kGroupA);
  e.report({1, 0, 3.3, 0});
  const auto* reports = e.epoch_reports(kGroupA);
  ASSERT_NE(reports, nullptr);
  ASSERT_EQ(reports->size(), 1u);
  EXPECT_DOUBLE_EQ((*reports)[0].qoe, 3.3);
  e.end_epoch();
  EXPECT_TRUE(e.epoch_reports(kGroupA)->empty());
}

}  // namespace
}  // namespace intox::pytheas
