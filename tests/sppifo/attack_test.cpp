// §3.2 SP-PIFO claim: adversarial rank *ordering* (same rank multiset)
// degrades scheduling quality — delays/inversions for high-priority
// packets and drops the random-order assumption would never produce.
#include <gtest/gtest.h>

#include "sppifo/attack.hpp"

namespace intox::sppifo {
namespace {

SchedulingResult run(ArrivalOrder order, std::uint64_t seed = 1) {
  RankWorkload w;
  w.order = order;
  sim::Rng rng{seed};
  const auto ranks = generate_ranks(w, rng);
  ScheduleConfig cfg;
  return run_scheduling_experiment(cfg, ranks);
}

TEST(RankGenerator, UniformCoversRange) {
  RankWorkload w;
  sim::Rng rng{2};
  const auto ranks = generate_ranks(w, rng);
  ASSERT_EQ(ranks.size(), w.packets);
  std::uint32_t lo = 1000, hi = 0;
  for (auto r : ranks) {
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  EXPECT_LT(lo, 5u);
  EXPECT_GT(hi, 94u);
}

TEST(RankGenerator, SawtoothDescendsWithinRamps) {
  RankWorkload w;
  w.order = ArrivalOrder::kSawtooth;
  w.packets = 64;
  w.ramp_len = 32;
  sim::Rng rng{3};
  const auto ranks = generate_ranks(w, rng);
  for (std::size_t i = 1; i < 32; ++i) {
    EXPECT_LT(ranks[i], ranks[i - 1]) << i;
  }
}

TEST(Attack, AdversarialOrderDegradesScheduling) {
  const auto uniform = run(ArrivalOrder::kUniformRandom);
  const auto drag = run(ArrivalOrder::kDragAndBurst);
  // Raw inversion *counts* saturate even under random arrivals; the
  // attack shows up in their magnitude: SP-PIFO's dequeue order diverges
  // several-fold further from the ideal PIFO's.
  EXPECT_GT(drag.sp_dequeue_inversions, uniform.sp_dequeue_inversions);
  EXPECT_GT(drag.mean_rank_error, 3.0 * uniform.mean_rank_error);
}

TEST(Attack, SawtoothMaximizesPushDowns) {
  const auto uniform = run(ArrivalOrder::kUniformRandom);
  const auto saw = run(ArrivalOrder::kSawtooth);
  EXPECT_GT(saw.sp_push_downs, 3 * uniform.sp_push_downs);
}

TEST(Attack, DragAndBurstDropsHighPriorityTraffic) {
  const auto uniform = run(ArrivalOrder::kUniformRandom);
  const auto drag = run(ArrivalOrder::kDragAndBurst);
  // The baseline (and the ideal PIFO under every order) drops no
  // high-priority packets at all; the attacked SP-PIFO does.
  EXPECT_EQ(uniform.sp_high_priority_drops, 0u);
  EXPECT_GT(drag.sp_high_priority_drops, 20u);
  EXPECT_GT(drag.sp_high_priority_drops,
            2 * drag.pifo_high_priority_drops);
}

TEST(Attack, RankErrorGrowsUnderAttack) {
  const auto uniform = run(ArrivalOrder::kUniformRandom);
  const auto drag = run(ArrivalOrder::kDragAndBurst);
  EXPECT_GT(drag.mean_rank_error, uniform.mean_rank_error);
}

TEST(Attack, ResultsDeterministicPerSeed) {
  const auto a = run(ArrivalOrder::kDragAndBurst, 9);
  const auto b = run(ArrivalOrder::kDragAndBurst, 9);
  EXPECT_EQ(a.sp_dequeue_inversions, b.sp_dequeue_inversions);
  EXPECT_EQ(a.sp_drops, b.sp_drops);
}

}  // namespace
}  // namespace intox::sppifo
