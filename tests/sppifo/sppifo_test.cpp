#include "sppifo/sppifo.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"
#include "sppifo/pifo.hpp"

namespace intox::sppifo {
namespace {

SpPifoConfig small() {
  SpPifoConfig c;
  c.queues = 2;
  c.per_queue_capacity = 4;
  return c;
}

TEST(IdealPifo, DequeuesInRankOrder) {
  IdealPifo p{10};
  p.enqueue({5, 0});
  p.enqueue({1, 1});
  p.enqueue({3, 2});
  EXPECT_EQ(p.dequeue()->rank, 1u);
  EXPECT_EQ(p.dequeue()->rank, 3u);
  EXPECT_EQ(p.dequeue()->rank, 5u);
  EXPECT_FALSE(p.dequeue().has_value());
}

TEST(IdealPifo, FifoAmongEqualRanks) {
  IdealPifo p{10};
  p.enqueue({2, 100});
  p.enqueue({2, 101});
  p.enqueue({2, 102});
  EXPECT_EQ(p.dequeue()->id, 100u);
  EXPECT_EQ(p.dequeue()->id, 101u);
}

TEST(IdealPifo, FullDropsWorst) {
  IdealPifo p{2};
  p.enqueue({1, 0});
  p.enqueue({9, 1});
  EXPECT_TRUE(p.enqueue({2, 2}));  // evicts rank 9
  EXPECT_EQ(p.drops(), 1u);
  EXPECT_EQ(p.dequeue()->rank, 1u);
  EXPECT_EQ(p.dequeue()->rank, 2u);
}

TEST(IdealPifo, FullRejectsWorseNewcomer) {
  IdealPifo p{2};
  p.enqueue({1, 0});
  p.enqueue({2, 1});
  EXPECT_FALSE(p.enqueue({9, 2}));
  EXPECT_EQ(p.drops(), 1u);
  EXPECT_EQ(p.size(), 2u);
}

TEST(SpPifo, MapsByBoundsBottomUp) {
  SpPifo sp{small()};
  // Initially all bounds are 0: everything lands in the bottom queue.
  EXPECT_EQ(sp.enqueue({7, 0}).value(), 1u);
  // Push-up: bottom bound is now 7; a rank-3 packet maps to queue 0.
  EXPECT_EQ(sp.enqueue({3, 1}).value(), 0u);
}

TEST(SpPifo, PushUpRaisesBound) {
  SpPifo sp{small()};
  sp.enqueue({7, 0});
  EXPECT_EQ(sp.bounds()[1], 7u);
  sp.enqueue({9, 1});
  EXPECT_EQ(sp.bounds()[1], 9u);
}

TEST(SpPifo, PushDownOnInversion) {
  SpPifo sp{small()};
  sp.enqueue({7, 0});  // bottom bound 7
  sp.enqueue({5, 1});  // queue 0, bound 5
  // Rank 2 undercuts every bound -> inversion, push-down by 3.
  sp.enqueue({2, 2});
  EXPECT_EQ(sp.counters().push_downs, 1u);
  EXPECT_EQ(sp.bounds()[0], 2u);
  EXPECT_EQ(sp.bounds()[1], 4u);
}

TEST(SpPifo, StrictPriorityDequeue) {
  SpPifo sp{small()};
  sp.enqueue({7, 0});  // queue 1
  sp.enqueue({3, 1});  // queue 0
  EXPECT_EQ(sp.dequeue()->rank, 3u);
  EXPECT_EQ(sp.dequeue()->rank, 7u);
}

TEST(SpPifo, DropsWhenQueueFull) {
  SpPifo sp{small()};
  for (std::uint64_t i = 0; i < 10; ++i) sp.enqueue({7, i});
  EXPECT_GT(sp.counters().dropped, 0u);
}

TEST(SpPifo, DequeueInversionCounted) {
  SpPifo sp{small()};
  sp.enqueue({7, 0});  // queue 1, bound1 = 7
  sp.enqueue({5, 1});  // queue 0, bound0 = 5
  sp.enqueue({2, 2});  // undercuts: push-down, forced into queue 0 behind 5
  // Queue 0 now holds [5, 2]: dequeuing 5 while 2 waits is an inversion.
  EXPECT_EQ(sp.dequeue()->rank, 5u);
  EXPECT_EQ(sp.counters().dequeue_inversions, 1u);
  EXPECT_EQ(sp.dequeue()->rank, 2u);
  EXPECT_EQ(sp.dequeue()->rank, 7u);
  EXPECT_EQ(sp.counters().dequeue_inversions, 1u);
}

TEST(SpPifo, RandomTrafficHasBoundedInversions) {
  // Sanity: under uniform random arrival order (SP-PIFO's design
  // assumption) inversions happen but stay a small fraction.
  SpPifoConfig cfg;
  cfg.queues = 8;
  cfg.per_queue_capacity = 32;
  SpPifo sp{cfg};
  sim::Rng rng{1};
  std::uint64_t id = 0;
  std::size_t dequeues = 0;
  for (int round = 0; round < 5000; ++round) {
    sp.enqueue({static_cast<std::uint32_t>(rng.uniform_int(0, 99)), id++});
    sp.enqueue({static_cast<std::uint32_t>(rng.uniform_int(0, 99)), id++});
    if (sp.dequeue()) ++dequeues;
  }
  EXPECT_GT(dequeues, 0u);
  EXPECT_LT(static_cast<double>(sp.counters().dequeue_inversions),
            0.6 * static_cast<double>(dequeues));
}

}  // namespace
}  // namespace intox::sppifo
