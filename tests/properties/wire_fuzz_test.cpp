// Wire-codec fuzzing: random packets round-trip losslessly; random byte
// corruption never crashes the parser and is (checksum-)detected; random
// garbage is rejected.
#include <gtest/gtest.h>

#include "net/packet.hpp"
#include "sim/rng.hpp"

namespace intox::net {
namespace {

class WireFuzz : public ::testing::TestWithParam<std::uint64_t> {};

Packet random_packet(sim::Rng& rng) {
  Packet p;
  p.src = Ipv4Addr{static_cast<std::uint32_t>(rng.uniform_int(1, UINT32_MAX))};
  p.dst = Ipv4Addr{static_cast<std::uint32_t>(rng.uniform_int(1, UINT32_MAX))};
  p.ttl = static_cast<std::uint8_t>(rng.uniform_int(1, 255));
  switch (rng.uniform_int(0, 2)) {
    case 0: {
      TcpHeader t;
      t.src_port = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
      t.dst_port = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
      t.seq = static_cast<std::uint32_t>(rng.uniform_int(0, UINT32_MAX));
      t.ack = static_cast<std::uint32_t>(rng.uniform_int(0, UINT32_MAX));
      t.syn = rng.bernoulli(0.2);
      t.ack_flag = rng.bernoulli(0.8);
      t.fin = rng.bernoulli(0.1);
      t.rst = rng.bernoulli(0.05);
      t.window = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
      p.l4 = t;
      break;
    }
    case 1: {
      UdpHeader u;
      u.src_port = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
      u.dst_port = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
      p.l4 = u;
      break;
    }
    default: {
      IcmpHeader ic;
      ic.type = rng.bernoulli(0.5) ? IcmpType::kTimeExceeded
                                   : IcmpType::kEchoRequest;
      ic.code = static_cast<std::uint8_t>(rng.uniform_int(0, 15));
      ic.id = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
      ic.seq = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
      p.l4 = ic;
      break;
    }
  }
  p.payload_bytes = static_cast<std::uint32_t>(rng.uniform_int(0, 1460));
  return p;
}

bool equal(const Packet& a, const Packet& b) {
  if (a.src != b.src || a.dst != b.dst || a.ttl != b.ttl ||
      a.payload_bytes != b.payload_bytes || a.proto() != b.proto()) {
    return false;
  }
  if (const auto* t = a.tcp()) {
    const auto* u = b.tcp();
    return t->src_port == u->src_port && t->dst_port == u->dst_port &&
           t->seq == u->seq && t->ack == u->ack && t->syn == u->syn &&
           t->ack_flag == u->ack_flag && t->fin == u->fin &&
           t->rst == u->rst && t->window == u->window;
  }
  if (const auto* ua = a.udp()) {
    const auto* ub = b.udp();
    return ua->src_port == ub->src_port && ua->dst_port == ub->dst_port;
  }
  const auto* ia = a.icmp();
  const auto* ib = b.icmp();
  return ia->type == ib->type && ia->code == ib->code && ia->id == ib->id &&
         ia->seq == ib->seq;
}

TEST_P(WireFuzz, RandomPacketsRoundTrip) {
  sim::Rng rng{GetParam()};
  for (int i = 0; i < 500; ++i) {
    const Packet p = random_packet(rng);
    const auto wire = serialize(p);
    const auto back = parse(wire);
    ASSERT_TRUE(back.has_value()) << i;
    EXPECT_TRUE(equal(p, *back)) << i;
  }
}

TEST_P(WireFuzz, SingleBitCorruptionIsDetected) {
  sim::Rng rng{GetParam() ^ 0xc0ffee};
  int undetected = 0;
  for (int i = 0; i < 300; ++i) {
    const Packet p = random_packet(rng);
    auto wire = serialize(p);
    const std::size_t byte = rng.uniform_int(0, wire.size() - 1);
    const int bit = static_cast<int>(rng.uniform_int(0, 7));
    wire[byte] ^= static_cast<std::byte>(1 << bit);
    const auto back = parse(wire);
    // Header corruption must be rejected. Payload-byte corruption is
    // caught by the L4 checksum too (payload is zeros in serialize), so
    // everything should be detected; tolerate nothing.
    if (back.has_value() && equal(p, *back)) continue;  // e.g. flag bit unused
    undetected += back.has_value();
  }
  EXPECT_EQ(undetected, 0);
}

TEST_P(WireFuzz, RandomGarbageNeverParses) {
  sim::Rng rng{GetParam() + 404};
  for (int i = 0; i < 300; ++i) {
    std::vector<std::byte> junk(rng.uniform_int(0, 200));
    for (auto& b : junk) {
      b = static_cast<std::byte>(rng.uniform_int(0, 255));
    }
    const auto back = parse(junk);
    // Passing all checksums by chance is ~2^-32; treat any success here
    // as failure.
    EXPECT_FALSE(back.has_value()) << i;
  }
}

TEST_P(WireFuzz, TruncationAlwaysRejected) {
  sim::Rng rng{GetParam() + 777};
  for (int i = 0; i < 200; ++i) {
    const Packet p = random_packet(rng);
    auto wire = serialize(p);
    const std::size_t cut = rng.uniform_int(0, wire.size() - 1);
    wire.resize(cut);
    EXPECT_FALSE(parse(wire).has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz, ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace intox::net
