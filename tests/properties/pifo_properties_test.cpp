// Scheduling properties: the ideal PIFO is a perfect priority queue; the
// SP-PIFO approximation has zero inversions on sorted input and bounded
// divergence on random input, across queue-bank shapes.
#include <gtest/gtest.h>

#include <algorithm>

#include "sim/rng.hpp"
#include "sppifo/sppifo.hpp"

namespace intox::sppifo {
namespace {

struct BankParam {
  std::size_t queues;
  std::size_t capacity;
};

class PifoProperties : public ::testing::TestWithParam<BankParam> {};

TEST_P(PifoProperties, IdealPifoAlwaysSortedOutput) {
  const auto param = GetParam();
  IdealPifo pifo{param.queues * param.capacity};
  sim::Rng rng{3};
  for (std::uint64_t i = 0; i < param.queues * param.capacity; ++i) {
    pifo.enqueue({static_cast<std::uint32_t>(rng.uniform_int(0, 999)), i});
  }
  std::uint32_t last = 0;
  while (auto p = pifo.dequeue()) {
    EXPECT_GE(p->rank, last);
    last = p->rank;
  }
}

TEST_P(PifoProperties, SpPifoZeroInversionsOnNonDecreasingInput) {
  // If ranks arrive already sorted, SP-PIFO never misorders: every
  // packet maps at or below its predecessors' queues and strict
  // priority drains in order.
  const auto param = GetParam();
  SpPifo sp{{param.queues, param.capacity}};
  sim::Rng rng{4};
  std::uint32_t rank = 0;
  std::uint64_t id = 0;
  for (int i = 0; i < 5000; ++i) {
    rank += static_cast<std::uint32_t>(rng.uniform_int(0, 3));
    sp.enqueue({rank, id++});
    if (sp.size() > param.capacity / 2) sp.dequeue();
  }
  while (auto p = sp.dequeue()) {
  }
  EXPECT_EQ(sp.counters().dequeue_inversions, 0u);
  EXPECT_EQ(sp.counters().push_downs, 0u);
}

TEST_P(PifoProperties, ConservationEnqueuedEqualsDequeuedPlusDropped) {
  const auto param = GetParam();
  SpPifo sp{{param.queues, param.capacity}};
  sim::Rng rng{5};
  std::uint64_t offered = 0, dequeued = 0;
  for (int i = 0; i < 20000; ++i) {
    sp.enqueue({static_cast<std::uint32_t>(rng.uniform_int(0, 99)),
                static_cast<std::uint64_t>(i)});
    ++offered;
    if (i % 2 == 0 && sp.dequeue()) ++dequeued;
  }
  while (sp.dequeue()) ++dequeued;
  EXPECT_EQ(offered, dequeued + sp.counters().dropped);
  EXPECT_EQ(sp.counters().enqueued, dequeued);
  EXPECT_TRUE(sp.empty());
}

TEST_P(PifoProperties, DequeueRespectsStrictPriorityAcrossQueues) {
  // Whatever the mapping did, a dequeued packet always comes from the
  // highest-priority non-empty queue: its rank may exceed lower queues'
  // contents only through mapping error, never through dequeue order.
  const auto param = GetParam();
  SpPifo sp{{param.queues, param.capacity}};
  sim::Rng rng{6};
  for (int round = 0; round < 500; ++round) {
    for (int i = 0; i < 8; ++i) {
      sp.enqueue({static_cast<std::uint32_t>(rng.uniform_int(0, 99)),
                  static_cast<std::uint64_t>(round * 8 + i)});
    }
    // Drain fully: within one drain, the sequence of *queue indices*
    // served is non-decreasing (strict priority with no new arrivals).
    std::optional<std::uint32_t> last_rank;
    std::size_t drained = 0;
    const std::size_t before = sp.size();
    while (auto p = sp.dequeue()) {
      ++drained;
      last_rank = p->rank;
    }
    EXPECT_EQ(drained, before);
    (void)last_rank;
  }
}

INSTANTIATE_TEST_SUITE_P(Banks, PifoProperties,
                         ::testing::Values(BankParam{2, 8}, BankParam{4, 16},
                                           BankParam{8, 16}, BankParam{8, 64},
                                           BankParam{32, 4}));

}  // namespace
}  // namespace intox::sppifo
