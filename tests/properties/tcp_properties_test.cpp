// TCP substrate properties across loss rates and receiver windows:
// transfers always complete exactly, and throughput obeys the expected
// bounds.
#include <gtest/gtest.h>

#include "sim/link.hpp"
#include "tcp/tcp.hpp"

namespace intox::tcp {
namespace {

struct Loop {
  sim::Scheduler sched;
  TcpConfig cfg;
  std::unique_ptr<sim::Link> fwd;
  std::unique_ptr<sim::Link> rev;
  std::unique_ptr<TcpSender> sender;
  std::unique_ptr<TcpReceiver> receiver;

  explicit Loop(double rate_bps, sim::Duration delay) {
    sim::LinkConfig fc;
    fc.rate_bps = rate_bps;
    fc.prop_delay = delay;
    sim::LinkConfig rc;
    rc.rate_bps = 1e9;
    rc.prop_delay = delay;
    rev = std::make_unique<sim::Link>(
        sched, rc, [this](net::Packet p) { sender->on_packet(p); });
    receiver = std::make_unique<TcpReceiver>(
        sched, cfg, [this](net::Packet p) { rev->transmit(std::move(p)); });
    fwd = std::make_unique<sim::Link>(
        sched, fc, [this](net::Packet p) { receiver->on_packet(p); });
    net::FiveTuple flow{net::Ipv4Addr{1, 1, 1, 1}, net::Ipv4Addr{2, 2, 2, 2},
                       40000, 80, net::IpProto::kTcp};
    sender = std::make_unique<TcpSender>(
        sched, cfg, flow,
        [this](net::Packet p) { fwd->transmit(std::move(p)); });
  }
};

class LossSweep : public ::testing::TestWithParam<double> {};

TEST_P(LossSweep, TransferAlwaysCompletesExactly) {
  const double loss = GetParam();
  Loop loop{50e6, sim::millis(5)};
  sim::Rng rng{static_cast<std::uint64_t>(loss * 1000) + 1};
  loop.fwd->set_tap([&](net::Packet& p) {
    return (p.payload_bytes > 0 && rng.bernoulli(loss))
               ? sim::TapAction::kDrop
               : sim::TapAction::kForward;
  });
  loop.sender->start(150000);
  loop.sched.run_until(sim::seconds(120));
  EXPECT_EQ(loop.receiver->bytes_received(), 150000u) << "loss " << loss;
  EXPECT_EQ(loop.sender->state(), TcpState::kDone);
}

TEST_P(LossSweep, NoDuplicateDeliveredBytes) {
  // bytes_received counts in-order delivery exactly once regardless of
  // how many spurious retransmissions arrive.
  const double loss = GetParam();
  Loop loop{50e6, sim::millis(5)};
  sim::Rng rng{static_cast<std::uint64_t>(loss * 7000) + 3};
  loop.fwd->set_tap([&](net::Packet& p) {
    return (p.payload_bytes > 0 && rng.bernoulli(loss))
               ? sim::TapAction::kDrop
               : sim::TapAction::kForward;
  });
  loop.sender->start(80000);
  loop.sched.run_until(sim::seconds(120));
  EXPECT_EQ(loop.receiver->bytes_received(), 80000u);
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossSweep,
                         ::testing::Values(0.0, 0.01, 0.03, 0.08, 0.15));

class RwndSweep : public ::testing::TestWithParam<int> {};

TEST_P(RwndSweep, ThroughputTracksWindowOverRtt) {
  const int segments = GetParam();
  Loop loop{1e9, sim::millis(20)};  // RTT 40 ms, link not the bottleneck
  loop.receiver->set_advertised_window(
      static_cast<std::uint16_t>(segments * 1448));
  loop.sender->start(0);
  loop.sched.run_until(sim::seconds(10));
  loop.sender->stop();
  const double goodput = static_cast<double>(loop.sender->delivered_bytes()) *
                         8.0 / 10.0;
  const double expected = static_cast<double>(segments) * 1448.0 * 8.0 / 0.040;
  // Within [40%, 110%] of the window-limited prediction (slow start eats
  // the early seconds; the sender keeps one MSS headroom).
  EXPECT_GT(goodput, 0.4 * expected) << segments;
  EXPECT_LT(goodput, 1.1 * expected) << segments;
}

INSTANTIATE_TEST_SUITE_P(Windows, RwndSweep, ::testing::Values(4, 8, 16, 32));

}  // namespace
}  // namespace intox::tcp
