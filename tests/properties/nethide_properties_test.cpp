// NetHide obfuscation properties across topology families: presented
// paths stay plausible, metrics stay in range, density never increases.
#include <gtest/gtest.h>

#include "nethide/obfuscate.hpp"
#include "sim/rng.hpp"

namespace intox::nethide {
namespace {

enum class Family { kGrid, kRing, kLeafSpine, kRandom };

struct TopoParam {
  Family family;
  std::size_t size;
};

Topology build(const TopoParam& param) {
  switch (param.family) {
    case Family::kGrid:
      return Topology::grid(param.size, param.size);
    case Family::kRing:
      return Topology::ring(param.size);
    case Family::kLeafSpine:
      return Topology::leaf_spine(2, param.size);
    case Family::kRandom: {
      // Connected random graph: ring + chords.
      Topology t = Topology::ring(param.size);
      sim::Rng rng{param.size};
      for (std::size_t i = 0; i < param.size; ++i) {
        t.add_link(static_cast<NodeId>(rng.uniform_int(0, param.size - 1)),
                   static_cast<NodeId>(rng.uniform_int(0, param.size - 1)));
      }
      return t;
    }
  }
  return Topology{1};
}

class NethideProperties : public ::testing::TestWithParam<TopoParam> {};

TEST_P(NethideProperties, ObfuscationInvariants) {
  const Topology topo = build(GetParam());
  ASSERT_TRUE(topo.connected());
  const auto r = obfuscate(topo, ObfuscationConfig{});

  // Metrics in range.
  EXPECT_GE(r.accuracy, 0.0);
  EXPECT_LE(r.accuracy, 1.0);
  EXPECT_GE(r.utility, 0.0);
  EXPECT_LE(r.utility, 1.0);

  // Density never increased by obfuscation.
  EXPECT_LE(r.presented_max_density, r.physical_max_density);

  // Every presented path is a real, endpoint-correct path.
  for (NodeId s = 0; s < r.presented.nodes(); ++s) {
    for (NodeId d = 0; d < r.presented.nodes(); ++d) {
      if (s == d) continue;
      const Path& p = r.presented.get(s, d);
      ASSERT_FALSE(p.empty());
      EXPECT_EQ(p.front(), s);
      EXPECT_EQ(p.back(), d);
      EXPECT_TRUE(topo.is_valid_path(p));
    }
  }
}

TEST_P(NethideProperties, TracerouteConsistentWithPresentedTable) {
  const Topology topo = build(GetParam());
  const auto r = obfuscate(topo, ObfuscationConfig{});
  for (NodeId s = 0; s < std::min<std::size_t>(r.presented.nodes(), 4); ++s) {
    for (NodeId d = 0; d < r.presented.nodes(); ++d) {
      if (s == d) continue;
      const auto hops = traceroute(topo, r.presented, s, d);
      const Path& p = r.presented.get(s, d);
      ASSERT_EQ(hops.size() + 1, p.size());
      for (std::size_t k = 0; k < hops.size(); ++k) {
        EXPECT_EQ(hops[k].from, topo.addr(p[k + 1]));
      }
    }
  }
}

TEST_P(NethideProperties, InferredTopologyIsSubgraphOfPresentedLinks) {
  const Topology topo = build(GetParam());
  const auto r = obfuscate(topo, ObfuscationConfig{});
  const Topology inferred = infer_topology(topo, r.presented);
  // NetHide presents only physically-valid paths, so the prober's map is
  // a subgraph of the real topology (unlike the malicious decoy).
  for (const Edge& e : inferred.links()) {
    EXPECT_TRUE(topo.has_link(e.a, e.b));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, NethideProperties,
    ::testing::Values(TopoParam{Family::kGrid, 3}, TopoParam{Family::kGrid, 4},
                      TopoParam{Family::kRing, 8},
                      TopoParam{Family::kLeafSpine, 6},
                      TopoParam{Family::kRandom, 12}));

}  // namespace
}  // namespace intox::nethide
