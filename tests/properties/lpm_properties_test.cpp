// LPM trie vs a brute-force reference on random rule sets.
#include <gtest/gtest.h>

#include <vector>

#include "net/lpm.hpp"
#include "sim/rng.hpp"

namespace intox::net {
namespace {

class LpmProperties : public ::testing::TestWithParam<std::uint64_t> {};

struct Rule {
  Prefix prefix;
  int value;
};

std::optional<int> reference_lookup(const std::vector<Rule>& rules,
                                    Ipv4Addr addr) {
  std::optional<int> best;
  int best_len = -1;
  for (const auto& r : rules) {
    if (r.prefix.contains(addr) && r.prefix.length() > best_len) {
      best = r.value;
      best_len = r.prefix.length();
    }
  }
  return best;
}

TEST_P(LpmProperties, MatchesBruteForceReference) {
  sim::Rng rng{GetParam()};
  LpmTable<int> table;
  std::vector<Rule> rules;

  // Random rule set with duplicates overwritten (matching insert
  // semantics) and varied prefix lengths.
  for (int i = 0; i < 300; ++i) {
    const auto addr =
        static_cast<std::uint32_t>(rng.uniform_int(0, UINT32_MAX));
    const int len = static_cast<int>(rng.uniform_int(0, 32));
    const Prefix p{Ipv4Addr{addr}, len};
    const int value = i;
    table.insert(p, value);
    // Reference: replace same-prefix rule.
    bool replaced = false;
    for (auto& r : rules) {
      if (r.prefix == p) {
        r.value = value;
        replaced = true;
        break;
      }
    }
    if (!replaced) rules.push_back({p, value});
  }
  ASSERT_EQ(table.size(), rules.size());

  for (int probe = 0; probe < 2000; ++probe) {
    const Ipv4Addr a{
        static_cast<std::uint32_t>(rng.uniform_int(0, UINT32_MAX))};
    const auto expect = reference_lookup(rules, a);
    const auto got = table.lookup(a);
    ASSERT_EQ(got.has_value(), expect.has_value()) << to_string(a);
    if (expect) {
      EXPECT_EQ(got->value, *expect) << to_string(a);
    }
  }
}

TEST_P(LpmProperties, EraseIsExactInverse) {
  sim::Rng rng{GetParam() * 7 + 1};
  LpmTable<int> table;
  std::vector<Prefix> inserted;
  for (int i = 0; i < 100; ++i) {
    const Prefix p{
        Ipv4Addr{static_cast<std::uint32_t>(rng.uniform_int(0, UINT32_MAX))},
        static_cast<int>(rng.uniform_int(1, 32))};
    if (!table.find(p)) inserted.push_back(p);
    table.insert(p, i);
  }
  rng.shuffle(inserted);
  for (const auto& p : inserted) EXPECT_TRUE(table.erase(p));
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(
      table.lookup(Ipv4Addr{static_cast<std::uint32_t>(
                       rng.uniform_int(0, UINT32_MAX))})
          .has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpmProperties,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace intox::net
