// Property tests for the discrete-event scheduler: randomized operation
// sequences across seeds must preserve the core invariants.
#include <gtest/gtest.h>

#include <map>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace intox::sim {
namespace {

class SchedulerProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerProperties, EveryLiveEventFiresOnceInTimeOrder) {
  Rng rng{GetParam()};
  Scheduler sched;
  std::map<std::uint64_t, int> fired;          // event key -> count
  std::vector<Scheduler::EventId> cancellable;
  Time last_fire_time = -1;
  bool order_ok = true;

  std::uint64_t key = 0;
  for (int i = 0; i < 500; ++i) {
    const Time t = static_cast<Time>(rng.uniform_int(0, 1'000'000));
    const std::uint64_t k = key++;
    auto id = sched.schedule_at(t, [&, k] {
      ++fired[k];
      order_ok &= sched.now() >= last_fire_time;
      last_fire_time = sched.now();
    });
    if (rng.bernoulli(0.3)) cancellable.push_back(id);
  }

  std::size_t cancelled = 0;
  for (auto id : cancellable) cancelled += sched.cancel(id);

  sched.run();
  EXPECT_TRUE(order_ok);
  EXPECT_EQ(fired.size(), 500u - cancelled);
  for (const auto& [k, count] : fired) EXPECT_EQ(count, 1) << "event " << k;
}

TEST_P(SchedulerProperties, NestedSchedulingPreservesMonotonicity) {
  Rng rng{GetParam() ^ 0x5eedULL};
  Scheduler sched;
  Time last = -1;
  bool ok = true;
  int remaining = 300;

  std::function<void()> spawn = [&] {
    ok &= sched.now() >= last;
    last = sched.now();
    if (--remaining <= 0) return;
    // Schedule 0-2 children at random future (or past: clamped) offsets.
    const int children = static_cast<int>(rng.uniform_int(0, 2));
    for (int c = 0; c < children; ++c) {
      const auto delta =
          static_cast<Duration>(rng.uniform_int(0, 1000)) - 200;  // may be < 0
      sched.schedule_after(delta, spawn);
    }
  };
  for (int i = 0; i < 50; ++i) {
    sched.schedule_at(static_cast<Time>(rng.uniform_int(0, 10000)), spawn);
  }
  sched.run(100000);
  EXPECT_TRUE(ok);
}

TEST_P(SchedulerProperties, DeterministicAcrossRuns) {
  auto run_once = [&] {
    Rng rng{GetParam() + 17};
    Scheduler sched;
    std::vector<Time> fire_times;
    for (int i = 0; i < 200; ++i) {
      sched.schedule_at(static_cast<Time>(rng.uniform_int(0, 5000)),
                        [&] { fire_times.push_back(sched.now()); });
    }
    sched.run();
    return fire_times;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_P(SchedulerProperties, RunUntilNeverOvershoots) {
  Rng rng{GetParam() * 31 + 7};
  Scheduler sched;
  bool ok = true;
  for (int i = 0; i < 300; ++i) {
    sched.schedule_at(static_cast<Time>(rng.uniform_int(0, 100000)),
                      [&] { ok &= sched.now() <= 50000; });
  }
  sched.run_until(50000);
  EXPECT_TRUE(ok);
  EXPECT_EQ(sched.now(), 50000);
  sched.run();  // the rest still fires afterwards
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperties,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace intox::sim
