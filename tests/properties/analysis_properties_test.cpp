// Monotonicity / inversion properties of the closed-form analyses (Blink
// binomial model, PCC utility function) over parameter grids, plus the
// golden simulation-vs-closed-form regression that guards the paper's
// core quantitative claim (Fig. 2 / §3.1).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "blink/analysis.hpp"
#include "blink/cell_process.hpp"
#include "pcc/utility.hpp"
#include "sim/runner.hpp"

namespace intox {
namespace {

class QmGrid : public ::testing::TestWithParam<double> {};

TEST_P(QmGrid, SuccessProbabilityMonotoneInTimeAndNeeded) {
  const double qm = GetParam();
  double prev = -1.0;
  for (double t = 10; t <= 510; t += 50) {
    const double p = blink::attack_success_probability(64, qm, t, 8.37, 32);
    EXPECT_GE(p, prev - 1e-12) << "t=" << t;
    prev = p;
  }
  // Needing more cells can only be harder.
  for (std::size_t k = 1; k < 64; ++k) {
    EXPECT_GE(blink::attack_success_probability(64, qm, 200, 8.37, k) + 1e-12,
              blink::attack_success_probability(64, qm, 200, 8.37, k + 1));
  }
}

TEST_P(QmGrid, QuantilesBracketTheMean) {
  const double qm = GetParam();
  for (double t : {50.0, 150.0, 300.0}) {
    const double p = blink::cell_malicious_probability(qm, t, 8.37);
    const double mean = 64.0 * p;
    const auto lo = blink::binomial_quantile(64, p, 0.05);
    const auto hi = blink::binomial_quantile(64, p, 0.95);
    // Integer quantiles bracket the mean up to one unit of quantization
    // (at extreme p the whole distribution sits on a single integer).
    EXPECT_LE(static_cast<double>(lo), mean + 1.0);
    EXPECT_GE(static_cast<double>(hi) + 1.0, mean);
    EXPECT_LE(lo, hi);
  }
}

TEST_P(QmGrid, CdfIsAProperDistribution) {
  const double qm = GetParam();
  const double p = blink::cell_malicious_probability(qm, 120.0, 8.37);
  double prev = -1.0;
  for (std::size_t k = 0; k <= 64; ++k) {
    const double c = blink::binomial_cdf(64, p, k);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0 + 1e-12);
    prev = c;
  }
  EXPECT_NEAR(blink::binomial_cdf(64, p, 64), 1.0, 1e-9);
}

TEST_P(QmGrid, MinQmIsExactThreshold) {
  const double conf = 0.9;
  const double qm =
      blink::min_qm_for_success(64, 510.0, GetParam() * 100.0 + 5.0, 32, conf);
  const double tr = GetParam() * 100.0 + 5.0;
  EXPECT_GE(blink::attack_success_probability(64, qm, 510.0, tr, 32),
            conf - 1e-6);
  EXPECT_LT(blink::attack_success_probability(64, qm * 0.9, 510.0, tr, 32),
            conf);
}

INSTANTIATE_TEST_SUITE_P(Fractions, QmGrid,
                         ::testing::Values(0.01, 0.03, 0.0525, 0.1, 0.2));

// Golden regression for the Figure 2 claim: the simulated cell-occupancy
// process must agree with the closed-form Binomial(n, 1-(1-qm)^(t/tr))
// model. Pinned (seed, attacker-rate) grid; every value below is fully
// deterministic, so a drift in either the simulator or the analysis
// breaks this under CTest.
class Fig2Golden
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(Fig2Golden, SimulatedOccupancyMatchesBinomialModel) {
  const auto [seed, qm] = GetParam();
  blink::CellProcessConfig cfg;
  cfg.qm = qm;
  const std::size_t runs = 400;

  sim::ParallelRunner runner;
  sim::SeriesStats occupancy{0, sim::seconds(cfg.horizon_seconds),
                             sim::seconds(25)};
  const auto series = runner.run(
      sim::Rng{seed}, runs, [&](std::size_t, sim::Rng& rng) {
        return blink::simulate_cell_process(cfg, rng);
      });
  for (const sim::TimeSeries& s : series) occupancy.add(s);

  const double n = static_cast<double>(cfg.cells);
  for (std::size_t i = 0; i < occupancy.points(); ++i) {
    const double t = sim::to_seconds(occupancy.time_at(i));
    // The simulator is an alternating renewal process: turnovers are
    // Poisson(t/tr), each flips the cell malicious with probability qm,
    // so P[cell malicious at t] is exactly 1 - exp(-qm * t / tr). The
    // paper's closed form replaces exp(-qm x) by (1-qm)^x — identical to
    // first order in qm; the O(qm^2) gap is the "closed form slightly
    // leads" note in EXPERIMENTS.md. Pin the simulation tightly to the
    // renewal-exact mean, and the paper model to the exact analytic gap.
    const double p_exact = 1.0 - std::exp(-qm * t / cfg.tr_seconds);
    const double p_model =
        blink::cell_malicious_probability(qm, t, cfg.tr_seconds);
    const double sigma =
        std::sqrt(n * p_exact * (1.0 - p_exact) / static_cast<double>(runs));
    EXPECT_NEAR(occupancy.at(i).mean(), n * p_exact, 3.0 * sigma + 0.25)
        << "seed=" << seed << " qm=" << qm << " t=" << t;
    const double model_gap = n * (p_model - p_exact);  // >= 0, O(qm^2)
    EXPECT_NEAR(occupancy.at(i).mean(), n * p_model,
                3.0 * sigma + 0.25 + model_gap)
        << "seed=" << seed << " qm=" << qm << " t=" << t;
    // The run-to-run spread must match the binomial too (within 25%),
    // once p is far enough from the edges for the spread to be nontrivial.
    if (p_exact > 0.05 && p_exact < 0.95) {
      const double model_sd = std::sqrt(n * p_exact * (1.0 - p_exact));
      EXPECT_NEAR(occupancy.at(i).stddev(), model_sd, 0.25 * model_sd)
          << "seed=" << seed << " qm=" << qm << " t=" << t;
    }
  }
}

TEST_P(Fig2Golden, OccupancyAggregateIsThreadCountInvariant) {
  const auto [seed, qm] = GetParam();
  blink::CellProcessConfig cfg;
  cfg.qm = qm;
  cfg.horizon_seconds = 200.0;  // keep the cross-check cheap
  const std::size_t runs = 64;

  auto aggregate = [&](std::size_t threads) {
    sim::ParallelRunner runner{threads};
    sim::SeriesStats agg{0, sim::seconds(cfg.horizon_seconds),
                         sim::seconds(25)};
    for (const sim::TimeSeries& s :
         runner.run(sim::Rng{seed}, runs,
                    [&](std::size_t, sim::Rng& rng) {
                      return blink::simulate_cell_process(cfg, rng);
                    })) {
      agg.add(s);
    }
    return agg;
  };

  const sim::SeriesStats serial = aggregate(1);
  const sim::SeriesStats sharded = aggregate(8);
  ASSERT_EQ(sharded.points(), serial.points());
  for (std::size_t i = 0; i < serial.points(); ++i) {
    EXPECT_EQ(sharded.at(i).mean(), serial.at(i).mean());
    EXPECT_EQ(sharded.at(i).variance(), serial.at(i).variance());
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedRateGrid, Fig2Golden,
    ::testing::Combine(::testing::Values(std::uint64_t{11}, std::uint64_t{29}),
                       ::testing::Values(0.03, 0.0525, 0.1)));

class RateGrid : public ::testing::TestWithParam<double> {};

TEST_P(RateGrid, UtilityMonotoneDecreasingInLoss) {
  const double rate = GetParam();
  double prev = pcc::utility(rate, 0.0);
  for (double l = 0.01; l <= 0.5; l += 0.01) {
    const double u = pcc::utility(rate, l);
    EXPECT_LT(u, prev) << "loss " << l;
    prev = u;
  }
}

TEST_P(RateGrid, UtilityLinearInRateAtFixedLoss) {
  const double rate = GetParam();
  for (double l : {0.0, 0.01, 0.04, 0.08}) {
    const double u1 = pcc::utility(rate, l);
    const double u2 = pcc::utility(2.0 * rate, l);
    EXPECT_NEAR(u2, 2.0 * u1, std::abs(u1) * 1e-9 + 1e-9);
  }
}

TEST_P(RateGrid, LossInversionRoundTrips) {
  const double rate = GetParam();
  for (double l : {0.005, 0.02, 0.05, 0.12}) {
    const double target = pcc::utility(rate, l);
    EXPECT_NEAR(pcc::loss_for_target_utility(rate, target), l, 1e-6);
  }
}

TEST_P(RateGrid, AttackDropNeverOverscales) {
  // The omniscient attacker's inversion: for any eps, the drop needed to
  // equalize u(x(1+eps)) with u(x(1-eps)) stays small (the paper's
  // "tampering with only a small fraction of traffic").
  const double rate = GetParam();
  for (double eps : {0.01, 0.03, 0.05}) {
    const double target = pcc::utility(rate * (1.0 - eps), 0.0);
    const double drop =
        pcc::loss_for_target_utility(rate * (1.0 + eps), target);
    EXPECT_GT(drop, 0.0);
    EXPECT_LT(drop, 3.0 * eps);  // ~2*eps/(1+..) plus sigmoid correction
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, RateGrid,
                         ::testing::Values(1e6, 10e6, 100e6, 1e9));

}  // namespace
}  // namespace intox
