// Monotonicity / inversion properties of the closed-form analyses (Blink
// binomial model, PCC utility function) over parameter grids.
#include <gtest/gtest.h>

#include <cmath>

#include "blink/analysis.hpp"
#include "pcc/utility.hpp"

namespace intox {
namespace {

class QmGrid : public ::testing::TestWithParam<double> {};

TEST_P(QmGrid, SuccessProbabilityMonotoneInTimeAndNeeded) {
  const double qm = GetParam();
  double prev = -1.0;
  for (double t = 10; t <= 510; t += 50) {
    const double p = blink::attack_success_probability(64, qm, t, 8.37, 32);
    EXPECT_GE(p, prev - 1e-12) << "t=" << t;
    prev = p;
  }
  // Needing more cells can only be harder.
  for (std::size_t k = 1; k < 64; ++k) {
    EXPECT_GE(blink::attack_success_probability(64, qm, 200, 8.37, k) + 1e-12,
              blink::attack_success_probability(64, qm, 200, 8.37, k + 1));
  }
}

TEST_P(QmGrid, QuantilesBracketTheMean) {
  const double qm = GetParam();
  for (double t : {50.0, 150.0, 300.0}) {
    const double p = blink::cell_malicious_probability(qm, t, 8.37);
    const double mean = 64.0 * p;
    const auto lo = blink::binomial_quantile(64, p, 0.05);
    const auto hi = blink::binomial_quantile(64, p, 0.95);
    // Integer quantiles bracket the mean up to one unit of quantization
    // (at extreme p the whole distribution sits on a single integer).
    EXPECT_LE(static_cast<double>(lo), mean + 1.0);
    EXPECT_GE(static_cast<double>(hi) + 1.0, mean);
    EXPECT_LE(lo, hi);
  }
}

TEST_P(QmGrid, CdfIsAProperDistribution) {
  const double qm = GetParam();
  const double p = blink::cell_malicious_probability(qm, 120.0, 8.37);
  double prev = -1.0;
  for (std::size_t k = 0; k <= 64; ++k) {
    const double c = blink::binomial_cdf(64, p, k);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0 + 1e-12);
    prev = c;
  }
  EXPECT_NEAR(blink::binomial_cdf(64, p, 64), 1.0, 1e-9);
}

TEST_P(QmGrid, MinQmIsExactThreshold) {
  const double conf = 0.9;
  const double qm =
      blink::min_qm_for_success(64, 510.0, GetParam() * 100.0 + 5.0, 32, conf);
  const double tr = GetParam() * 100.0 + 5.0;
  EXPECT_GE(blink::attack_success_probability(64, qm, 510.0, tr, 32),
            conf - 1e-6);
  EXPECT_LT(blink::attack_success_probability(64, qm * 0.9, 510.0, tr, 32),
            conf);
}

INSTANTIATE_TEST_SUITE_P(Fractions, QmGrid,
                         ::testing::Values(0.01, 0.03, 0.0525, 0.1, 0.2));

class RateGrid : public ::testing::TestWithParam<double> {};

TEST_P(RateGrid, UtilityMonotoneDecreasingInLoss) {
  const double rate = GetParam();
  double prev = pcc::utility(rate, 0.0);
  for (double l = 0.01; l <= 0.5; l += 0.01) {
    const double u = pcc::utility(rate, l);
    EXPECT_LT(u, prev) << "loss " << l;
    prev = u;
  }
}

TEST_P(RateGrid, UtilityLinearInRateAtFixedLoss) {
  const double rate = GetParam();
  for (double l : {0.0, 0.01, 0.04, 0.08}) {
    const double u1 = pcc::utility(rate, l);
    const double u2 = pcc::utility(2.0 * rate, l);
    EXPECT_NEAR(u2, 2.0 * u1, std::abs(u1) * 1e-9 + 1e-9);
  }
}

TEST_P(RateGrid, LossInversionRoundTrips) {
  const double rate = GetParam();
  for (double l : {0.005, 0.02, 0.05, 0.12}) {
    const double target = pcc::utility(rate, l);
    EXPECT_NEAR(pcc::loss_for_target_utility(rate, target), l, 1e-6);
  }
}

TEST_P(RateGrid, AttackDropNeverOverscales) {
  // The omniscient attacker's inversion: for any eps, the drop needed to
  // equalize u(x(1+eps)) with u(x(1-eps)) stays small (the paper's
  // "tampering with only a small fraction of traffic").
  const double rate = GetParam();
  for (double eps : {0.01, 0.03, 0.05}) {
    const double target = pcc::utility(rate * (1.0 - eps), 0.0);
    const double drop = pcc::loss_for_target_utility(rate * (1.0 + eps), target);
    EXPECT_GT(drop, 0.0);
    EXPECT_LT(drop, 3.0 * eps);  // ~2*eps/(1+..) plus sigmoid correction
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, RateGrid,
                         ::testing::Values(1e6, 10e6, 100e6, 1e9));

}  // namespace
}  // namespace intox
