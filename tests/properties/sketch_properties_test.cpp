// Property sweeps over the probabilistic structures: Bloom FPR tracks
// theory across dimensionings; FlowRadar decodes exactly below its
// threshold; LossRadar recovers arbitrary loss sets that fit.
#include <gtest/gtest.h>

#include <algorithm>

#include "net/hash.hpp"
#include "sim/rng.hpp"
#include "sketch/flowradar.hpp"
#include "sketch/lossradar.hpp"

namespace intox::sketch {
namespace {

struct BloomParam {
  std::size_t cells;
  std::uint32_t hashes;
  std::uint64_t inserted;
};

class BloomProperties : public ::testing::TestWithParam<BloomParam> {};

TEST_P(BloomProperties, NoFalseNegativesEver) {
  const auto p = GetParam();
  BloomFilter f{p.cells, p.hashes, 3};
  for (std::uint64_t i = 0; i < p.inserted; ++i) f.insert(net::mix64(i));
  for (std::uint64_t i = 0; i < p.inserted; ++i) {
    ASSERT_TRUE(f.contains(net::mix64(i))) << i;
  }
}

TEST_P(BloomProperties, EmpiricalFprWithinTheoryBand) {
  const auto p = GetParam();
  BloomFilter f{p.cells, p.hashes, 3};
  for (std::uint64_t i = 0; i < p.inserted; ++i) f.insert(net::mix64(i));
  const double theory = bloom_theoretical_fpr(p.cells, p.hashes, p.inserted);
  const double measured = bloom_empirical_fpr(f, 30000);
  // Allow 3-sigma binomial noise plus 20% model slack.
  const double sigma = std::sqrt(std::max(theory, 1e-4) / 30000.0);
  EXPECT_NEAR(measured, theory, 0.2 * theory + 3.0 * sigma + 2e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Dimensionings, BloomProperties,
    ::testing::Values(BloomParam{1024, 2, 100}, BloomParam{1024, 4, 100},
                      BloomParam{4096, 4, 400}, BloomParam{4096, 6, 400},
                      BloomParam{16384, 4, 2000}, BloomParam{512, 3, 200}));

class FlowRadarProperties : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FlowRadarProperties, DecodesExactlyBelowThreshold) {
  const std::size_t flows = GetParam();
  FlowRadarConfig cfg;
  cfg.table_cells = 1023;  // 3 partitions of 341
  FlowRadar radar{cfg};
  sim::Rng rng{flows};
  std::vector<std::pair<std::uint64_t, std::uint64_t>> truth;  // flow, pkts
  for (std::size_t i = 0; i < flows; ++i) {
    const std::uint64_t flow = net::mix64(1000 + i);
    const std::uint64_t pkts = rng.uniform_int(1, 9);
    truth.push_back({flow, pkts});
    for (std::uint64_t p = 0; p < pkts; ++p) radar.add_packet(flow);
  }
  const DecodeResult result = radar.decode();
  ASSERT_TRUE(result.complete()) << flows << " flows";
  ASSERT_EQ(result.flows.size(), truth.size());

  auto sorted = result.flows;
  std::sort(sorted.begin(), sorted.end(),
            [](const DecodedFlow& a, const DecodedFlow& b) {
              return a.flow < b.flow;
            });
  std::sort(truth.begin(), truth.end());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_EQ(sorted[i].flow, truth[i].first);
    EXPECT_EQ(sorted[i].packets, truth[i].second);
  }
}

TEST_P(FlowRadarProperties, DecodeIsNonDestructive) {
  FlowRadarConfig cfg;
  cfg.table_cells = 1023;
  FlowRadar radar{cfg};
  for (std::size_t i = 0; i < GetParam(); ++i) {
    radar.add_packet(net::mix64(i));
  }
  const auto first = radar.decode();
  const auto second = radar.decode();
  EXPECT_EQ(first.flows.size(), second.flows.size());
  EXPECT_EQ(first.stuck_cells, second.stuck_cells);
}

INSTANTIATE_TEST_SUITE_P(Loads, FlowRadarProperties,
                         ::testing::Values(10, 50, 150, 250, 350));

class LossRadarProperties : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LossRadarProperties, RecoversArbitraryLossSets) {
  const std::size_t losses = GetParam();
  LossRadarConfig cfg;
  cfg.cells = 513;  // 3 partitions of 171; threshold ~ 400
  LossRadar up{cfg}, down{cfg};
  sim::Rng rng{losses * 13 + 1};
  std::vector<std::uint64_t> lost;
  for (std::uint64_t i = 1; i <= 3000; ++i) {
    const std::uint64_t id = net::mix64(i);
    up.add(id);
    if (lost.size() < losses && rng.bernoulli(0.2)) {
      lost.push_back(id);
    } else {
      down.add(id);
    }
  }
  auto result = up.diff_decode(down);
  ASSERT_TRUE(result.complete());
  std::sort(result.lost.begin(), result.lost.end());
  std::sort(lost.begin(), lost.end());
  EXPECT_EQ(result.lost, lost);
}

INSTANTIATE_TEST_SUITE_P(LossCounts, LossRadarProperties,
                         ::testing::Values(0, 1, 10, 60, 150));

}  // namespace
}  // namespace intox::sketch
