// PCC convergence properties across bottleneck rates and seeds: the
// clean sender settles near the link rate with bounded wobble, and the
// attack effect holds at every operating point.
#include <gtest/gtest.h>

#include "pcc/experiment.hpp"

namespace intox::pcc {
namespace {

struct PccParam {
  double bottleneck_bps;
  std::uint64_t seed;
};

class PccSweep : public ::testing::TestWithParam<PccParam> {};

PccExperimentConfig config_for(const PccParam& p) {
  PccExperimentConfig cfg;
  cfg.bottleneck_bps = p.bottleneck_bps;
  // Queue sized to ~25 ms of the link rate; RED over its upper half.
  cfg.queue_limit_bytes =
      static_cast<std::uint32_t>(p.bottleneck_bps * 0.025 / 8.0);
  cfg.red_min_bytes = cfg.queue_limit_bytes / 8;
  cfg.red_max_bytes = cfg.queue_limit_bytes;
  cfg.duration = sim::seconds(60);
  cfg.seed = p.seed;
  return cfg;
}

TEST_P(PccSweep, CleanRunTracksBottleneck) {
  const auto r = run_pcc_experiment(config_for(GetParam()));
  const double ratio = r.mean_rate_bps / GetParam().bottleneck_bps;
  EXPECT_GT(ratio, 0.75) << "under-utilizing";
  EXPECT_LT(ratio, 1.35) << "overshooting";
  EXPECT_LT(r.rate_cv, 0.12);
}

TEST_P(PccSweep, AttackAlwaysDegrades) {
  auto cfg = config_for(GetParam());
  const auto clean = run_pcc_experiment(cfg);
  cfg.attack = true;
  const auto attacked = run_pcc_experiment(cfg);
  // At every operating point the attacked flow ends below the clean one
  // and oscillates at least as much.
  EXPECT_LT(attacked.mean_rate_bps, clean.mean_rate_bps);
  EXPECT_GT(attacked.rate_cv + 0.02, clean.rate_cv);
}

INSTANTIATE_TEST_SUITE_P(
    Rates, PccSweep,
    ::testing::Values(PccParam{10e6, 1}, PccParam{20e6, 2},
                      PccParam{50e6, 3}, PccParam{20e6, 9}));

}  // namespace
}  // namespace intox::pcc
