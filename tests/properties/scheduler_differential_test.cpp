// Randomized differential suite for the timing-wheel scheduler: 1e5-op
// schedule/schedule_after/cancel/run_until/run workloads executed on the
// wheel with the SchedulerOracle armed, so every operation is replayed
// on the sorted-vector ReferenceQueue and compared (fire order,
// timestamps, cancel results, pending counts) as it happens. Any
// divergence raises InvariantError (throw mode) and fails the test.
//
// This binary carries the `sanitize` label: the asan-ubsan and tsan
// presets run it, so the wheel's intrusive-list surgery and slab reuse
// are additionally checked for memory and lifetime errors.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "validate/invariant.hpp"
#include "validate/oracles.hpp"

namespace intox::sim {
namespace {

class SchedulerDifferential : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SchedulerDifferential, RandomOpSequenceNeverDivergesFromOracle) {
  validate::ScopedInvariantMode guard{validate::InvariantMode::kThrow};
  Rng rng{GetParam()};
  Scheduler s;
  s.enable_oracle();
  ASSERT_TRUE(s.oracle_enabled());

  std::vector<Scheduler::EventId> live;
  constexpr int kOps = 25'000;  // x4 seeds = 1e5 ops total
  for (int op = 0; op < kOps; ++op) {
    const double roll = rng.uniform();
    if (roll < 0.55 || live.empty()) {
      // Schedule: a mix of absolute times (possibly in the past —
      // clamped) and relative delays.
      if (rng.bernoulli(0.5)) {
        const Time t = s.now() + static_cast<Time>(rng.uniform_int(0, 5000)) -
                       500;  // may be < now
        live.push_back(s.schedule_at(t, [] {}));
      } else {
        const auto d = static_cast<Duration>(rng.uniform_int(0, 5000));
        live.push_back(s.schedule_after(d, [] {}));
      }
    } else if (roll < 0.80) {
      // Cancel a random remembered id. Roughly half are already fired
      // (stale) — the wheel and the reference must agree on the result.
      const std::size_t pick =
          static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(live.size()) - 1));
      s.cancel(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else if (roll < 0.95) {
      s.run_until(s.now() + static_cast<Time>(rng.uniform_int(0, 3000)));
    } else {
      s.run(static_cast<std::size_t>(rng.uniform_int(1, 50)));
    }
  }
  s.run();
  EXPECT_EQ(s.pending(), 0u);
}

TEST_P(SchedulerDifferential, NestedSchedulingNeverDivergesFromOracle) {
  // Callbacks that schedule (at `now`, nearby, or clamped-past times)
  // and cancel during the drain — the paths where FIFO-within-instant
  // and the cursor rules are easiest to get wrong.
  validate::ScopedInvariantMode guard{validate::InvariantMode::kThrow};
  Rng rng{GetParam() ^ 0xd1ffULL};
  Scheduler s;
  s.enable_oracle();

  int remaining = 5'000;
  std::vector<Scheduler::EventId> cancellable;
  std::function<void()> spawn = [&] {
    if (--remaining <= 0) return;
    const int children = static_cast<int>(rng.uniform_int(0, 2));
    for (int c = 0; c < children; ++c) {
      // Offset may be negative: clamps to now and fires this instant,
      // after every already-queued peer.
      const auto d =
          static_cast<Duration>(rng.uniform_int(0, 800)) - 100;
      const auto id = s.schedule_after(d, spawn);
      if (rng.bernoulli(0.2)) cancellable.push_back(id);
    }
    if (!cancellable.empty() && rng.bernoulli(0.3)) {
      s.cancel(cancellable.back());
      cancellable.pop_back();
    }
  };
  for (int i = 0; i < 200; ++i) {
    s.schedule_at(static_cast<Time>(rng.uniform_int(0, 1000)), spawn);
  }
  while (s.pending() > 0) {
    s.run_until(s.now() + 500);
  }
  EXPECT_EQ(s.pending(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerDifferential,
                         ::testing::Values(0x1ull, 0xbeefull, 0xc0ffeeull,
                                           0x5eed5ull));

}  // namespace
}  // namespace intox::sim
