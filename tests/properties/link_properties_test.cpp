// Property tests for the link model: conservation, ordering, and latency
// bounds across a grid of configurations.
#include <gtest/gtest.h>

#include "sim/link.hpp"
#include "sim/rng.hpp"

namespace intox::sim {
namespace {

struct LinkParam {
  double rate_bps;
  Duration prop_delay;
  std::uint32_t queue_limit;
  std::uint32_t red_min;  // 0 = no RED
};

class LinkProperties : public ::testing::TestWithParam<LinkParam> {};

net::Packet make_pkt(std::uint64_t tag, std::uint32_t payload) {
  net::Packet p;
  p.src = net::Ipv4Addr{1, 0, 0, 1};
  p.dst = net::Ipv4Addr{2, 0, 0, 1};
  p.l4 = net::UdpHeader{1, 2};
  p.payload_bytes = payload;
  p.flow_tag = tag;
  return p;
}

TEST_P(LinkProperties, ConservationAndFifoAndLatencyBound) {
  const LinkParam param = GetParam();
  Scheduler sched;
  LinkConfig cfg;
  cfg.rate_bps = param.rate_bps;
  cfg.prop_delay = param.prop_delay;
  cfg.queue_limit_bytes = param.queue_limit;
  cfg.red_min_bytes = param.red_min;
  cfg.red_max_bytes = param.queue_limit;
  cfg.red_max_prob = 0.3;

  std::vector<std::uint64_t> delivered_tags;
  std::vector<Time> sent_at(2000, -1);
  Time min_latency_violations = 0;
  Link link{sched, cfg, [&](net::Packet p) {
              delivered_tags.push_back(p.flow_tag);
              const Time latency =
                  sched.now() - sent_at[static_cast<std::size_t>(p.flow_tag)];
              if (latency < cfg.prop_delay) ++min_latency_violations;
            }};

  Rng rng{99};
  std::uint64_t tag = 0;
  // Bursty offered load around 2x capacity.
  for (int burst = 0; burst < 100; ++burst) {
    const auto burst_size = static_cast<int>(rng.uniform_int(1, 8));
    sched.schedule_at(burst * kMillisecond, [&, burst_size] {
      for (int i = 0; i < burst_size && tag < 2000; ++i) {
        sent_at[static_cast<std::size_t>(tag)] = sched.now();
        link.transmit(make_pkt(tag, 1000));
        ++tag;
      }
    });
  }
  sched.run();

  const auto& c = link.counters();
  // Conservation: everything offered is accounted exactly once.
  EXPECT_EQ(c.tx_packets, c.delivered_packets + c.dropped_queue +
                              c.dropped_red + c.dropped_tap + c.dropped_down);
  EXPECT_EQ(delivered_tags.size(), c.delivered_packets);

  // FIFO: delivered tags are strictly increasing (no reordering).
  for (std::size_t i = 1; i < delivered_tags.size(); ++i) {
    EXPECT_LT(delivered_tags[i - 1], delivered_tags[i]);
  }

  // Latency >= propagation delay, always.
  EXPECT_EQ(min_latency_violations, 0);
}

TEST_P(LinkProperties, TapSeesEveryOfferedPacket) {
  const LinkParam param = GetParam();
  Scheduler sched;
  LinkConfig cfg;
  cfg.rate_bps = param.rate_bps;
  cfg.prop_delay = param.prop_delay;
  cfg.queue_limit_bytes = param.queue_limit;

  std::uint64_t tapped = 0;
  Link link{sched, cfg, [](net::Packet) {}};
  link.set_tap([&](net::Packet&) {
    ++tapped;
    return TapAction::kForward;
  });
  for (int i = 0; i < 500; ++i) link.transmit(make_pkt(i, 500));
  sched.run();
  EXPECT_EQ(tapped, 500u);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, LinkProperties,
    ::testing::Values(LinkParam{1e6, kMillisecond, 16 * 1024, 0},
                      LinkParam{10e6, 10 * kMillisecond, 64 * 1024, 0},
                      LinkParam{100e6, kMicrosecond, 8 * 1024, 0},
                      LinkParam{10e6, 5 * kMillisecond, 32 * 1024, 8 * 1024},
                      LinkParam{1e9, kMillisecond, 256 * 1024, 64 * 1024}));

}  // namespace
}  // namespace intox::sim
