// Discounted-UCB behaviour across seeds and gap sizes: converges to the
// best arm under honest noisy rewards, and the poisoned-minority flip
// threshold behaves monotonically.
#include <gtest/gtest.h>

#include "pytheas/ucb.hpp"
#include "sim/rng.hpp"

namespace intox::pytheas {
namespace {

struct BanditParam {
  double gap;     // quality difference between best and second arm
  std::uint64_t seed;
};

class BanditProperties : public ::testing::TestWithParam<BanditParam> {};

TEST_P(BanditProperties, ConvergesToBestArmUnderNoise) {
  const auto param = GetParam();
  DiscountedUcb bandit{3, UcbConfig{}};
  sim::Rng rng{param.seed};
  const double bases[3] = {3.0, 3.0 + param.gap, 2.5};

  int best_picks_late = 0;
  for (int epoch = 0; epoch < 200; ++epoch) {
    // Every arm gets some exploration traffic; exploitation follows the
    // bandit's current choice.
    for (std::size_t arm = 0; arm < 3; ++arm) {
      bandit.observe(arm, bases[arm] + rng.normal(0.0, 0.3));
    }
    const std::size_t choice = bandit.best_mean_arm();
    for (int i = 0; i < 10; ++i) {
      bandit.observe(choice, bases[choice] + rng.normal(0.0, 0.3));
    }
    bandit.decay();
    if (epoch >= 150 && choice == 1) ++best_picks_late;
  }
  EXPECT_GE(best_picks_late, 45);  // >=90% of the last 50 epochs
}

TEST_P(BanditProperties, FlipRequiresProportionalPoison) {
  // With a larger quality gap, more poisoned reports are needed to flip
  // the discounted means.
  const auto param = GetParam();
  auto poison_needed = [&](double gap) {
    DiscountedUcb b{2, UcbConfig{}};
    for (int i = 0; i < 100; ++i) {
      b.observe(0, 3.0 + gap);
      b.observe(1, 3.0);
    }
    int poison = 0;
    while (b.best_mean_arm() == 0 && poison < 10000) {
      b.observe(0, 0.0);
      b.observe(1, 5.0);
      ++poison;
    }
    return poison;
  };
  EXPECT_LE(poison_needed(param.gap), poison_needed(param.gap * 2.0));
}

INSTANTIATE_TEST_SUITE_P(
    Gaps, BanditProperties,
    ::testing::Values(BanditParam{0.5, 1}, BanditParam{0.5, 2},
                      BanditParam{1.0, 3}, BanditParam{1.5, 4},
                      BanditParam{1.5, 5}));

}  // namespace
}  // namespace intox::pytheas
