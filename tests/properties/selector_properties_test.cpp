// Blink flow-selector invariants under random traffic, across cell
// counts and hash seeds.
#include <gtest/gtest.h>

#include <set>

#include "blink/flow_selector.hpp"
#include "sim/rng.hpp"

namespace intox::blink {
namespace {

struct SelectorParam {
  std::size_t cells;
  std::uint32_t seed;
};

class SelectorProperties : public ::testing::TestWithParam<SelectorParam> {};

net::FiveTuple random_tuple(sim::Rng& rng) {
  net::FiveTuple t;
  t.src =
      net::Ipv4Addr{static_cast<std::uint32_t>(rng.uniform_int(1, 1 << 24))};
  t.dst = net::Ipv4Addr{10, 0, 0, 1};
  t.src_port = static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
  t.dst_port = 80;
  return t;
}

TEST_P(SelectorProperties, InvariantsUnderRandomTraffic) {
  const auto param = GetParam();
  BlinkConfig cfg;
  cfg.cells = param.cells;
  cfg.hash_seed = param.seed;
  FlowSelector sel{cfg};
  sim::Rng rng{param.seed + 1};

  // A pool of flows, each sending at random times with random seqs.
  std::vector<net::FiveTuple> pool;
  for (int i = 0; i < 200; ++i) pool.push_back(random_tuple(rng));

  sim::Time now = 0;
  for (int step = 0; step < 20000; ++step) {
    now += static_cast<sim::Duration>(rng.uniform_int(0, sim::millis(30)));
    const auto& flow = pool[rng.uniform_int(0, pool.size() - 1)];
    const auto seq = static_cast<std::uint32_t>(rng.uniform_int(0, 50));
    const bool fin = rng.bernoulli(0.01);
    sel.observe(flow, 0, seq, fin, now);

    if (step % 1000 == 0) {
      // Invariant 1: occupied count never exceeds the cell count.
      ASSERT_LE(sel.occupied_count(), param.cells);
      // Invariant 2: each occupied cell's flow hashes to its own index.
      for (std::size_t i = 0; i < sel.cell_count(); ++i) {
        const auto cell = sel.cell(i);
        if (!cell.occupied) continue;
        ASSERT_EQ(net::flow_hash(cell.flow, cfg.hash_seed) % param.cells, i);
        // Invariant 3: timestamps are coherent.
        ASSERT_LE(cell.sampled_at, cell.last_seen);
        ASSERT_LE(cell.last_seen, now);
      }
      // Invariant 4: retransmitting count is bounded by occupancy.
      ASSERT_LE(sel.retransmitting_count(now), sel.occupied_count());
    }
  }

  // Invariant 5: residency samples are all non-negative.
  EXPECT_GE(sel.residency_stats().min(), 0.0);

  // Invariant 6: reset leaves nothing behind and counts all evictions.
  const auto evicted_before = sel.residency_stats().count();
  const auto occupied = sel.occupied_count();
  sel.reset(now);
  EXPECT_EQ(sel.occupied_count(), 0u);
  EXPECT_EQ(sel.residency_stats().count(), evicted_before + occupied);
}

TEST_P(SelectorProperties, MonitoredFlowIsAlwaysTheCellOccupant) {
  const auto param = GetParam();
  BlinkConfig cfg;
  cfg.cells = param.cells;
  cfg.hash_seed = param.seed;
  FlowSelector sel{cfg};
  sim::Rng rng{param.seed + 2};

  for (int step = 0; step < 5000; ++step) {
    const auto flow = random_tuple(rng);
    const sim::Time now = step * sim::millis(10);
    const auto v = sel.observe(flow, 7, 1, false, now);
    if (v.monitored) {
      const std::size_t idx =
          net::flow_hash(flow, cfg.hash_seed) % param.cells;
      EXPECT_TRUE(sel.cell(idx).occupied);
      EXPECT_EQ(sel.cell(idx).flow, flow);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, SelectorProperties,
    ::testing::Values(SelectorParam{16, 0}, SelectorParam{64, 0},
                      SelectorParam{64, 7}, SelectorParam{256, 1},
                      SelectorParam{31, 5}));

}  // namespace
}  // namespace intox::blink
