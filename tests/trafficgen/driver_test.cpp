#include "trafficgen/driver.hpp"

#include <gtest/gtest.h>

#include <map>

namespace intox::trafficgen {
namespace {

FlowSpec legit_spec() {
  FlowSpec f;
  f.id = 1;
  f.tuple = {net::Ipv4Addr{1, 1, 1, 1}, net::Ipv4Addr{10, 0, 0, 1}, 5555, 80,
             net::IpProto::kTcp};
  f.start = sim::seconds(1);
  f.duration = sim::seconds(5);
  f.pkt_interval = sim::millis(100);
  return f;
}

TEST(LegitFlowDriver, SendsDuringLifetimeThenFin) {
  sim::Scheduler s;
  std::vector<net::Packet> pkts;
  LegitFlowDriver d{s, sim::Rng{1}, legit_spec(),
                    [&](net::Packet p) { pkts.push_back(std::move(p)); }};
  d.start();
  s.run();
  ASSERT_GT(pkts.size(), 10u);
  EXPECT_TRUE(pkts.back().tcp()->fin);
  for (std::size_t i = 0; i + 1 < pkts.size(); ++i) {
    EXPECT_FALSE(pkts[i].tcp()->fin);
  }
  EXPECT_TRUE(d.finished());
}

TEST(LegitFlowDriver, FreshSequenceNumbersWhenHealthy) {
  sim::Scheduler s;
  std::vector<std::uint32_t> seqs;
  LegitFlowDriver d{s, sim::Rng{2}, legit_spec(),
                    [&](net::Packet p) { seqs.push_back(p.tcp()->seq); }};
  d.start();
  s.run();
  for (std::size_t i = 1; i + 1 < seqs.size(); ++i) {  // skip FIN
    EXPECT_GT(seqs[i], seqs[i - 1]);
  }
}

TEST(LegitFlowDriver, FailureModeRetransmitsWithBackoff) {
  sim::Scheduler s;
  std::vector<std::pair<sim::Time, std::uint32_t>> sent;
  auto spec = legit_spec();
  spec.duration = sim::seconds(100);
  LegitFlowDriver d{s, sim::Rng{3}, spec, [&](net::Packet p) {
                      sent.push_back({s.now(), p.tcp()->seq});
                    }};
  d.start();
  s.run_until(sim::seconds(3));
  const auto healthy_count = sent.size();
  d.enter_failure_mode();
  s.run_until(sim::seconds(3) + sim::seconds(7));  // 1+2+4 = 7s of RTOs
  ASSERT_GE(sent.size(), healthy_count + 3);

  // All post-failure packets carry the same (retransmitted) seq.
  const std::uint32_t frozen = sent[healthy_count].second;
  for (std::size_t i = healthy_count; i < sent.size(); ++i) {
    EXPECT_EQ(sent[i].second, frozen);
  }
  // Inter-retransmit gaps double: 1 s then 2 s then 4 s.
  const auto gap1 = sent[healthy_count + 1].first - sent[healthy_count].first;
  const auto gap2 =
      sent[healthy_count + 2].first - sent[healthy_count + 1].first;
  EXPECT_EQ(gap1, sim::seconds(1));
  EXPECT_EQ(gap2, sim::seconds(2));
}

TEST(LegitFlowDriver, ExitFailureModeResumesFreshSeqs) {
  sim::Scheduler s;
  std::vector<std::uint32_t> seqs;
  auto spec = legit_spec();
  spec.duration = sim::seconds(60);
  LegitFlowDriver d{s, sim::Rng{4}, spec,
                    [&](net::Packet p) { seqs.push_back(p.tcp()->seq); }};
  d.start();
  s.run_until(sim::seconds(2));
  d.enter_failure_mode();
  s.run_until(sim::seconds(5));
  d.exit_failure_mode();
  const auto resumed_at = seqs.size();
  s.run_until(sim::seconds(8));
  ASSERT_GT(seqs.size(), resumed_at + 2);
  EXPECT_GT(seqs.back(), seqs[resumed_at]);
}

TEST(MaliciousFlowDriver, EmitsDuplicatePairsForever) {
  sim::Scheduler s;
  std::map<std::uint32_t, int> seq_counts;
  std::vector<sim::Time> times;
  FlowSpec f;
  f.id = 9;
  f.tuple = {net::Ipv4Addr{6, 6, 6, 6}, net::Ipv4Addr{10, 0, 0, 2}, 6666, 80,
             net::IpProto::kTcp};
  f.start = 0;
  f.pkt_interval = sim::millis(100);
  MaliciousFlowDriver d{s, sim::Rng{5}, f, [&](net::Packet p) {
                          ++seq_counts[p.tcp()->seq];
                          times.push_back(s.now());
                        }};
  d.start();
  s.run_until(sim::seconds(10));
  d.stop();

  EXPECT_GE(seq_counts.size(), 18u);  // ~20 seqs in 10 s at 250 ms spacing
  std::size_t singles = 0;
  for (const auto& [seq, count] : seq_counts) {
    EXPECT_LE(count, 2) << "seq " << seq;
    singles += (count == 1);
  }
  // Every seq is sent exactly twice, except possibly the one in flight
  // when the driver was stopped.
  EXPECT_LE(singles, 1u);
  // Activity gaps never exceed Blink's 2 s eviction timeout.
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_LT(times[i] - times[i - 1], sim::seconds(2));
  }
}

TEST(MaliciousFlowDriver, StopHalts) {
  sim::Scheduler s;
  int count = 0;
  FlowSpec f;
  f.tuple = {net::Ipv4Addr{6, 6, 6, 6}, net::Ipv4Addr{10, 0, 0, 2}, 1, 2,
             net::IpProto::kTcp};
  MaliciousFlowDriver d{s, sim::Rng{6}, f, [&](net::Packet) { ++count; }};
  d.start();
  s.run_until(sim::seconds(2));
  const int at_stop = count;
  d.stop();
  s.run_until(sim::seconds(10));
  EXPECT_EQ(count, at_stop);
}

TEST(FlowPopulation, RunsMixedPopulation) {
  sim::Scheduler s;
  std::uint64_t legit_pkts = 0, bad_pkts = 0;
  FlowPopulation pop{s, sim::Rng{7}, [&](net::Packet p) {
                       if (p.flow_tag >= 1000) {
                         ++bad_pkts;
                       } else {
                         ++legit_pkts;
                       }
                     }};
  for (int i = 0; i < 10; ++i) {
    auto f = legit_spec();
    f.id = static_cast<std::uint64_t>(i);
    f.tuple.src_port = static_cast<std::uint16_t>(10000 + i);
    pop.add_legit(f);
  }
  FlowSpec bad;
  bad.id = 1000;
  bad.tuple = {net::Ipv4Addr{6, 6, 6, 6}, net::Ipv4Addr{10, 0, 0, 9}, 7, 8,
               net::IpProto::kTcp};
  pop.add_malicious(bad);
  EXPECT_EQ(pop.legit_count(), 10u);
  EXPECT_EQ(pop.malicious_count(), 1u);

  pop.start_all();
  s.run_until(sim::seconds(8));
  pop.stop_all();
  EXPECT_GT(legit_pkts, 100u);
  EXPECT_GT(bad_pkts, 10u);
}

}  // namespace
}  // namespace intox::trafficgen
