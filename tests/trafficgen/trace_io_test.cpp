#include "trafficgen/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "trafficgen/synth.hpp"

namespace intox::trafficgen {
namespace {

std::vector<FlowSpec> sample_flows() {
  TraceConfig cfg;
  cfg.active_flows = 50;
  cfg.horizon = sim::seconds(10);
  sim::Rng rng{12};
  auto flows = synthesize_trace(cfg, rng);
  sim::Rng rng2{13};
  auto bad = synthesize_malicious_flows(cfg, 5, sim::seconds(1), rng2, 900000);
  flows.insert(flows.end(), bad.begin(), bad.end());
  return flows;
}

TEST(TraceIo, RoundTripPreservesEverything) {
  const auto flows = sample_flows();
  const auto parsed = from_csv(to_csv(flows));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_EQ((*parsed)[i].id, flows[i].id);
    EXPECT_EQ((*parsed)[i].tuple, flows[i].tuple);
    EXPECT_EQ((*parsed)[i].start, flows[i].start);
    EXPECT_EQ((*parsed)[i].duration, flows[i].duration);
    EXPECT_EQ((*parsed)[i].pkt_interval, flows[i].pkt_interval);
    EXPECT_EQ((*parsed)[i].payload_bytes, flows[i].payload_bytes);
    EXPECT_EQ((*parsed)[i].malicious, flows[i].malicious);
  }
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  const auto parsed = from_csv(to_csv({}));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
}

TEST(TraceIo, RejectsMissingHeader) {
  EXPECT_FALSE(from_csv("1,1.2.3.4,5.6.7.8,1,2,6,0,1,1,512,0\n").has_value());
}

TEST(TraceIo, RejectsWrongFieldCount) {
  const std::string csv = to_csv({}) + "1,1.2.3.4,5.6.7.8,1,2,6,0,1,1,512\n";
  EXPECT_FALSE(from_csv(csv).has_value());
}

TEST(TraceIo, RejectsBadAddress) {
  const std::string csv =
      to_csv({}) + "1,999.2.3.4,5.6.7.8,1,2,6,0,1,1,512,0\n";
  EXPECT_FALSE(from_csv(csv).has_value());
}

TEST(TraceIo, RejectsBadProtocolAndFlags) {
  EXPECT_FALSE(
      from_csv(to_csv({}) + "1,1.2.3.4,5.6.7.8,1,2,7,0,1,1,512,0\n")
          .has_value());
  EXPECT_FALSE(
      from_csv(to_csv({}) + "1,1.2.3.4,5.6.7.8,1,2,6,0,1,1,512,2\n")
          .has_value());
}

TEST(TraceIo, ToleratesCrLfAndBlankLines) {
  std::string csv = to_csv(sample_flows());
  // Convert to CRLF and sprinkle blank lines.
  std::string crlf;
  for (char c : csv) {
    if (c == '\n') crlf += "\r\n";
    else crlf += c;
  }
  crlf += "\r\n\r\n";
  const auto parsed = from_csv(crlf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), sample_flows().size());
}

TEST(TraceIo, FileRoundTrip) {
  const auto flows = sample_flows();
  const std::string path = "/tmp/intox_trace_io_test.csv";
  ASSERT_TRUE(write_csv_file(path, flows));
  const auto parsed = read_csv_file(path);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), flows.size());
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileReturnsNullopt) {
  EXPECT_FALSE(read_csv_file("/nonexistent/path/trace.csv").has_value());
}

}  // namespace
}  // namespace intox::trafficgen
