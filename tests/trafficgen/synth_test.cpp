#include "trafficgen/synth.hpp"

#include <gtest/gtest.h>

#include "sim/stats.hpp"

namespace intox::trafficgen {
namespace {

TEST(TraceSynth, InitialPopulationMatchesTarget) {
  TraceConfig cfg;
  cfg.active_flows = 500;
  sim::Rng rng{1};
  auto flows = synthesize_trace(cfg, rng);
  std::size_t at_zero = 0;
  for (const auto& f : flows) at_zero += (f.start == 0);
  EXPECT_EQ(at_zero, 500u);
}

TEST(TraceSynth, SteadyStateActiveCountNearTarget) {
  TraceConfig cfg;
  cfg.active_flows = 1000;
  cfg.mean_duration = sim::seconds(8.37);
  cfg.horizon = sim::seconds(120);
  sim::Rng rng{2};
  auto flows = synthesize_trace(cfg, rng);

  // Count flows active at a mid-trace instant.
  const sim::Time probe = sim::seconds(60);
  std::size_t active = 0;
  for (const auto& f : flows) {
    if (f.start <= probe && f.start + f.duration > probe) ++active;
  }
  EXPECT_NEAR(static_cast<double>(active), 1000.0, 120.0);
}

TEST(TraceSynth, ExponentialDurationsHaveTargetMean) {
  TraceConfig cfg;
  cfg.mean_duration = sim::seconds(8.37);
  sim::Rng rng{3};
  sim::RunningStats s;
  for (int i = 0; i < 100000; ++i) {
    s.add(sim::to_seconds(draw_duration(cfg, rng)));
  }
  EXPECT_NEAR(s.mean(), 8.37, 0.15);
}

TEST(TraceSynth, LogNormalDurationsHaveTargetMean) {
  TraceConfig cfg;
  cfg.mean_duration = sim::seconds(5.0);
  cfg.duration_model = DurationModel::kLogNormal;
  sim::Rng rng{4};
  sim::RunningStats s;
  for (int i = 0; i < 200000; ++i) {
    s.add(sim::to_seconds(draw_duration(cfg, rng)));
  }
  EXPECT_NEAR(s.mean(), 5.0, 0.35);
}

TEST(TraceSynth, BoundedParetoWithinBounds) {
  TraceConfig cfg;
  cfg.mean_duration = sim::seconds(5.0);
  cfg.duration_model = DurationModel::kBoundedPareto;
  sim::Rng rng{5};
  for (int i = 0; i < 10000; ++i) {
    const double d = sim::to_seconds(draw_duration(cfg, rng));
    EXPECT_GT(d, 0.0);
    EXPECT_LE(d, 20.0 * 5.0 + 1e-9);
  }
}

TEST(TraceSynth, TuplesLandInVictimPrefix) {
  TraceConfig cfg;
  cfg.victim_prefix = net::Prefix{net::Ipv4Addr{10, 20, 0, 0}, 16};
  sim::Rng rng{6};
  for (int i = 0; i < 1000; ++i) {
    auto t = random_tuple_to(cfg.victim_prefix, rng);
    EXPECT_TRUE(cfg.victim_prefix.contains(t.dst));
    EXPECT_EQ(t.proto, net::IpProto::kTcp);
  }
}

TEST(TraceSynth, FlowIdsUnique) {
  TraceConfig cfg;
  cfg.active_flows = 200;
  cfg.horizon = sim::seconds(30);
  sim::Rng rng{7};
  auto flows = synthesize_trace(cfg, rng);
  std::set<std::uint64_t> ids;
  for (const auto& f : flows) ids.insert(f.id);
  EXPECT_EQ(ids.size(), flows.size());
}

TEST(TraceSynth, MaliciousFlowsTaggedAndSequential) {
  TraceConfig cfg;
  sim::Rng rng{8};
  auto bad = synthesize_malicious_flows(cfg, 105, sim::seconds(1), rng,
                                        /*first_id=*/1000000);
  ASSERT_EQ(bad.size(), 105u);
  for (std::size_t i = 0; i < bad.size(); ++i) {
    EXPECT_TRUE(bad[i].malicious);
    EXPECT_EQ(bad[i].id, 1000000 + i);
    EXPECT_EQ(bad[i].start, sim::seconds(1));
    EXPECT_TRUE(cfg.victim_prefix.contains(bad[i].tuple.dst));
  }
}

TEST(TraceSynth, DeterministicGivenSeed) {
  TraceConfig cfg;
  cfg.active_flows = 100;
  cfg.horizon = sim::seconds(10);
  sim::Rng r1{99}, r2{99};
  auto f1 = synthesize_trace(cfg, r1);
  auto f2 = synthesize_trace(cfg, r2);
  ASSERT_EQ(f1.size(), f2.size());
  for (std::size_t i = 0; i < f1.size(); ++i) {
    EXPECT_EQ(f1[i].tuple, f2[i].tuple);
    EXPECT_EQ(f1[i].start, f2[i].start);
    EXPECT_EQ(f1[i].duration, f2[i].duration);
  }
}

}  // namespace
}  // namespace intox::trafficgen
