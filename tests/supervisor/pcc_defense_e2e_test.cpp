// End-to-end §5 PCC defense: rerun the §4.2 oscillation attack with the
// guard attached to the sender and compare against the undefended run.
#include <gtest/gtest.h>

#include "pcc/attacker.hpp"
#include "pcc/receiver.hpp"
#include "sim/link.hpp"
#include "supervisor/pcc_guard.hpp"

namespace intox::supervisor {
namespace {

struct RunResult {
  double rate_cv = 0.0;
  double osc_amplitude = 0.0;
  bool detected = false;
  double epsilon_cap = 0.0;
};

RunResult run_attacked(bool with_guard, std::uint64_t seed = 5) {
  sim::Scheduler sched;
  pcc::PccConfig cfg;
  cfg.seed = seed;

  sim::LinkConfig fwd;
  fwd.rate_bps = 20e6;
  fwd.prop_delay = sim::millis(20);
  fwd.queue_limit_bytes = 64 * 1024;
  fwd.red_min_bytes = 8 * 1024;
  fwd.red_max_bytes = 64 * 1024;
  fwd.red_max_prob = 0.25;
  sim::LinkConfig rev;
  rev.rate_bps = 1e9;
  rev.prop_delay = sim::millis(20);

  pcc::PccSender* sp = nullptr;
  sim::Link reverse{sched, rev, [&](net::Packet a) {
                      sp->on_ack(static_cast<std::uint32_t>(a.flow_tag),
                                 sched.now());
                    }};
  pcc::PccReceiver recv{[&](net::Packet a) { reverse.transmit(std::move(a)); }};
  sim::Link bottleneck{sched, fwd, [&](net::Packet d) { recv.on_data(d); }};

  net::FiveTuple t{net::Ipv4Addr{1, 1, 1, 1}, net::Ipv4Addr{2, 2, 2, 2},
                   10000, 443, net::IpProto::kUdp};
  pcc::PccSender sender{
      sched, cfg, t,
      [&](net::Packet p) { bottleneck.transmit(std::move(p)); }};
  sp = &sender;

  std::unique_ptr<PccGuard> guard;
  if (with_guard) guard = std::make_unique<PccGuard>(sender);

  pcc::PccMitmConfig mcfg;
  pcc::PccMitm mitm{sched, mcfg, &sender};
  mitm.attach(bottleneck);

  sender.start();
  sched.run_until(sim::seconds(60));
  sender.stop();

  RunResult out;
  sim::RunningStats stats;
  for (const auto& [when, rate] : sender.rate_series().points()) {
    if (when >= sim::seconds(40)) stats.add(rate);
  }
  out.rate_cv = stats.mean() > 0 ? stats.stddev() / stats.mean() : 0.0;
  out.osc_amplitude =
      stats.mean() > 0 ? (stats.max() - stats.min()) / (2.0 * stats.mean())
                       : 0.0;
  out.detected = guard && guard->detected();
  out.epsilon_cap = sender.epsilon_cap();
  return out;
}

TEST(PccDefenseE2E, GuardDetectsTheAttack) {
  const RunResult defended = run_attacked(true);
  EXPECT_TRUE(defended.detected);
  EXPECT_DOUBLE_EQ(defended.epsilon_cap, PccGuardConfig{}.clamped_epsilon);
}

TEST(PccDefenseE2E, GuardCapsOscillationAmplitude) {
  const RunResult undefended = run_attacked(false);
  const RunResult defended = run_attacked(true);
  EXPECT_LT(defended.osc_amplitude, undefended.osc_amplitude);
  EXPECT_LT(defended.rate_cv, undefended.rate_cv);
}

}  // namespace
}  // namespace intox::supervisor
