// §5-II attack synthesis: the black-box fuzzer rediscovers the §3.1
// Blink attack from the generic packet vocabulary alone.
#include "supervisor/attack_synth.hpp"

#include <gtest/gtest.h>

#include "blink/blink_node.hpp"

namespace intox::supervisor {
namespace {

constexpr net::Prefix kVictim{net::Ipv4Addr{10, 0, 0, 0}, 8};

blink::BlinkConfig small_blink() {
  blink::BlinkConfig c;
  c.cells = 16;  // majority = 8: a tractable search target for unit tests
  return c;
}

AttackSynthesizer::Factory blink_factory(const blink::BlinkConfig& cfg) {
  return [cfg]() -> std::unique_ptr<dataplane::PacketProcessor> {
    auto node = std::make_unique<blink::BlinkNode>(cfg);
    node->monitor_prefix(kVictim, 0, 1);
    return node;
  };
}

double blink_score(dataplane::PacketProcessor& p) {
  auto& node = static_cast<blink::BlinkNode&>(p);
  const auto* sel = node.selector(kVictim);
  // Guide towards occupancy, cells that ever retransmitted, and —
  // crucially — the high-water mark of *simultaneously* retransmitting
  // cells (the timing structure the failure inference keys on).
  double s = static_cast<double>(sel->occupied_count());
  const auto occupied = sel->occupied();
  const auto last_retransmit = sel->last_retransmit();
  for (std::size_t i = 0; i < occupied.size(); ++i) {
    if (occupied[i] && last_retransmit[i] != blink::kNever) s += 10.0;
  }
  s += 50.0 * static_cast<double>(node.max_retransmitting());
  s += 1000.0 * static_cast<double>(node.reroutes().size());
  return s;
}

bool blink_goal(dataplane::PacketProcessor& p) {
  return !static_cast<blink::BlinkNode&>(p).reroutes().empty();
}

TEST(AttackSynthesis, RediscoversTheBlinkAttack) {
  SynthConfig cfg;
  cfg.flow_pool = 64;
  cfg.sequence_length = 1200;
  cfg.max_iterations = 4000;
  cfg.mutations_per_step = 40;
  cfg.seed = 3;
  AttackSynthesizer synth{cfg};
  const auto result =
      synth.search(blink_factory(small_blink()), blink_score, blink_goal);
  ASSERT_TRUE(result.found)
      << "no reroute-triggering input found in " << result.iterations
      << " iterations (best score " << result.best_score << ")";
  EXPECT_LE(result.iterations, cfg.max_iterations);

  // The witness is replayable: a fresh BlinkNode falls to it too.
  auto fresh = blink_factory(small_blink())();
  synth.replay(result.witness, *fresh);
  EXPECT_FALSE(static_cast<blink::BlinkNode&>(*fresh).reroutes().empty());
}

TEST(AttackSynthesis, WitnessContainsDuplicateSeqPattern) {
  // The §3.1 signature: the found input leans on repeated sequence
  // numbers (that is the only way to trip Blink's detector). The search
  // is stochastic, so allow a few seeds before concluding failure.
  SynthResult result;
  for (std::uint64_t seed = 4; seed < 9 && !result.found; ++seed) {
    SynthConfig cfg;
    cfg.flow_pool = 64;
    cfg.sequence_length = 1200;
    cfg.max_iterations = 4000;
    cfg.seed = seed;
    AttackSynthesizer synth{cfg};
    result =
        synth.search(blink_factory(small_blink()), blink_score, blink_goal);
  }
  ASSERT_TRUE(result.found);
  std::size_t repeats = 0;
  for (const auto& g : result.witness) repeats += g.repeat_seq;
  EXPECT_GT(repeats, result.witness.size() / 5);
}

TEST(AttackSynthesis, EasierGoalFoundFaster) {
  // Generic tool check: a strictly weaker predicate ("half the cells
  // occupied") needs far fewer iterations than the full reroute.
  SynthConfig cfg;
  cfg.flow_pool = 64;
  cfg.sequence_length = 300;
  cfg.max_iterations = 500;
  cfg.seed = 5;
  AttackSynthesizer synth{cfg};
  const auto result = synth.search(
      blink_factory(small_blink()),
      [](dataplane::PacketProcessor& p) {
        return static_cast<double>(static_cast<blink::BlinkNode&>(p)
                                       .selector(kVictim)
                                       ->occupied_count());
      },
      [](dataplane::PacketProcessor& p) {
        return static_cast<blink::BlinkNode&>(p)
                   .selector(kVictim)
                   ->occupied_count() >= 8;
      });
  EXPECT_TRUE(result.found);
  EXPECT_LT(result.iterations, 100u);
}

TEST(AttackSynthesis, ImpossibleGoalExhaustsBudgetGracefully) {
  SynthConfig cfg;
  cfg.sequence_length = 100;
  cfg.max_iterations = 50;
  AttackSynthesizer synth{cfg};
  const auto result = synth.search(
      blink_factory(small_blink()),
      [](dataplane::PacketProcessor&) { return 0.0; },
      [](dataplane::PacketProcessor&) { return false; });
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.iterations, 50u);
  EXPECT_FALSE(result.witness.empty());  // best effort still returned
}

}  // namespace
}  // namespace intox::supervisor
