// BlinkRtoGuard: vetoes the §3.1 attack while letting genuine failures
// through, both at the selector level and end-to-end.
#include "supervisor/blink_guard.hpp"

#include <gtest/gtest.h>

#include "blink/attacker.hpp"

namespace intox::supervisor {
namespace {

using blink::FlowSelector;

net::FiveTuple tuple(std::uint16_t port) {
  return {net::Ipv4Addr{1, 1, 1, 1}, net::Ipv4Addr{10, 0, 0, 1}, port, 80,
          net::IpProto::kTcp};
}

blink::BlinkConfig cfg16() {
  blink::BlinkConfig c;
  c.cells = 16;
  return c;
}

TEST(BlinkRtoGuard, AllowsFreshFailureSignature) {
  FlowSelector sel{cfg16()};
  // 16 flows send normally for a while, then all start retransmitting at
  // t=30 s with RTO spacing — a genuine failure.
  for (std::uint16_t i = 0; i < 16; ++i) {
    sel.observe(tuple(static_cast<std::uint16_t>(1000 + i)), i, 100, false,
                sim::seconds(29));
  }
  const sim::Time fail = sim::seconds(30);
  for (std::uint16_t i = 0; i < 16; ++i) {
    sel.observe(tuple(static_cast<std::uint16_t>(1000 + i)), i, 100, false,
                fail);
    sel.observe(tuple(static_cast<std::uint16_t>(1000 + i)), i, 100, false,
                fail + sim::seconds(1));
  }
  BlinkRtoGuard guard;
  const auto a = guard.assess(sel, fail + sim::seconds(1));
  EXPECT_TRUE(a.allowed());
  EXPECT_LT(a.risk, 0.25);
}

TEST(BlinkRtoGuard, VetoesContinuousEmitters) {
  FlowSelector sel{cfg16()};
  // Attack flows retransmitting every 500 ms for half a minute.
  sim::Time t = 0;
  for (int round = 0; round < 60; ++round) {
    for (std::uint16_t i = 0; i < 16; ++i) {
      sel.observe(tuple(static_cast<std::uint16_t>(1000 + i)), i,
                  static_cast<std::uint32_t>(round / 2), false, t);
    }
    t += sim::millis(500);
  }
  BlinkRtoGuard guard;
  const auto a = guard.assess(sel, t);
  EXPECT_FALSE(a.allowed());
  EXPECT_GT(a.risk, 0.5);
  EXPECT_EQ(guard.stats().denied, 1u);
}

TEST(BlinkRtoGuard, EmptySelectorIsLowRisk) {
  FlowSelector sel{cfg16()};
  BlinkRtoGuard guard;
  EXPECT_TRUE(guard.assess(sel, sim::seconds(1)).allowed());
}

TEST(BlinkRtoGuard, EndToEndAttackSuppressed) {
  // Full Fig.2-style packet-level attack with the guard installed: the
  // malicious majority forms, but the reroute is vetoed.
  // Paper-scale population: the malicious flow count must exceed the 64
  // cells for a majority capture to be possible at all.
  blink::Fig2Config cfg;
  cfg.trace.horizon = sim::seconds(240);
  cfg.seed = 8;

  // Run twice: without and with the guard.
  const auto undefended = blink::run_fig2_experiment(cfg);
  ASSERT_FALSE(undefended.reroutes.empty());

  // With guard: replicate the experiment wiring, guard installed.
  sim::Scheduler sched;
  sim::Rng rng{cfg.seed};
  blink::BlinkNode node{cfg.blink};
  node.monitor_prefix(cfg.trace.victim_prefix, 0, 1);
  BlinkRtoGuard guard;
  node.set_reroute_guard(guard.as_reroute_guard());

  auto sink = [&](net::Packet p) {
    dataplane::PipelineMetadata meta;
    node.process(p, meta, sched.now());
  };
  trafficgen::FlowPopulation pop{sched, rng.fork("drivers"), sink};
  {
    sim::Rng trng = rng.fork("trace");
    for (const auto& f : trafficgen::synthesize_trace(cfg.trace, trng)) {
      pop.add_legit(f);
    }
  }
  {
    sim::Rng brng = rng.fork("malicious");
    trafficgen::MaliciousFlowDriver::Options opts;
    opts.send_period = cfg.trace.pkt_interval;
    for (const auto& f : trafficgen::synthesize_malicious_flows(
             cfg.trace, cfg.malicious_flows, 0, brng,
             blink::kMaliciousTagBase)) {
      pop.add_malicious(f, opts);
    }
  }
  pop.start_all();
  sched.run_until(cfg.trace.horizon);
  pop.stop_all();

  EXPECT_TRUE(node.reroutes().empty());
  EXPECT_GT(node.vetoed(), 0u);
}

TEST(BlinkRtoGuard, EndToEndGenuineFailureStillReroutes) {
  // Legit-only population; a real failure at t=60 s must still trigger a
  // reroute with the guard installed (no false negative).
  sim::Scheduler sched;
  sim::Rng rng{13};
  blink::BlinkConfig bcfg;
  blink::BlinkNode node{bcfg};
  trafficgen::TraceConfig tcfg;
  tcfg.active_flows = 800;
  tcfg.horizon = sim::seconds(90);
  node.monitor_prefix(tcfg.victim_prefix, 0, 1);
  BlinkRtoGuard guard;
  node.set_reroute_guard(guard.as_reroute_guard());

  auto sink = [&](net::Packet p) {
    dataplane::PipelineMetadata meta;
    node.process(p, meta, sched.now());
  };
  trafficgen::FlowPopulation pop{sched, rng.fork("drivers"), sink};
  sim::Rng trng = rng.fork("trace");
  for (const auto& f : trafficgen::synthesize_trace(tcfg, trng)) {
    pop.add_legit(f);
  }
  pop.start_all();
  sched.schedule_at(sim::seconds(60), [&] { pop.fail_all_legit(); });
  sched.run_until(tcfg.horizon);
  pop.stop_all();

  ASSERT_FALSE(node.reroutes().empty());
  // Reroute decision happened within a few seconds of the failure.
  EXPECT_GE(node.reroutes()[0].when, sim::seconds(60));
  EXPECT_LT(node.reroutes()[0].when, sim::seconds(70));
  EXPECT_EQ(node.vetoed(), 0u);
}

}  // namespace
}  // namespace intox::supervisor
