#include "supervisor/pcc_guard.hpp"

#include <gtest/gtest.h>

#include "supervisor/input_quality.hpp"

namespace intox::supervisor {
namespace {

using pcc::PccSender;

// Drives a bare sender's observer machinery without a network: we
// construct outcomes directly.
struct GuardHarness {
  sim::Scheduler sched;
  pcc::PccConfig cfg;
  PccSender sender{sched, cfg,
                   net::FiveTuple{net::Ipv4Addr{1, 1, 1, 1},
                                  net::Ipv4Addr{2, 2, 2, 2}, 10000, 443,
                                  net::IpProto::kUdp},
                   [](net::Packet) {}};
};

PccSender::ExperimentOutcome attack_outcome() {
  PccSender::ExperimentOutcome o;
  o.up_loss_mean = 0.03;
  o.down_loss_mean = 0.02;
  o.hold_loss = 0.0;
  o.conclusive = false;
  o.epsilon = 0.03;
  return o;
}

PccSender::ExperimentOutcome benign_outcome() {
  PccSender::ExperimentOutcome o;
  // Benign congestion: loss grows with the sending rate, so the +eps arm
  // sees the most and the -eps arm the least — holds sit in between.
  o.up_loss_mean = 0.02;
  o.down_loss_mean = 0.010;
  o.hold_loss = 0.015;
  o.conclusive = false;
  o.epsilon = 0.02;
  return o;
}

TEST(PccGuard, DetectsProbeTargetedLossStreak) {
  GuardHarness h;
  PccGuard guard{h.sender};
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(guard.detected());
    guard.observe(attack_outcome());
  }
  EXPECT_TRUE(guard.detected());
  EXPECT_DOUBLE_EQ(h.sender.epsilon_cap(), PccGuardConfig{}.clamped_epsilon);
}

TEST(PccGuard, BenignCongestionDoesNotTrigger) {
  GuardHarness h;
  PccGuard guard{h.sender};
  for (int i = 0; i < 20; ++i) guard.observe(benign_outcome());
  EXPECT_FALSE(guard.detected());
  EXPECT_DOUBLE_EQ(h.sender.epsilon_cap(), h.cfg.epsilon_max);
}

TEST(PccGuard, StreakResetsOnCleanExperiment) {
  GuardHarness h;
  PccGuardConfig gcfg;
  gcfg.streak_to_trigger = 3;
  PccGuard guard{h.sender, gcfg};
  guard.observe(attack_outcome());
  guard.observe(attack_outcome());
  guard.observe(benign_outcome());  // breaks the streak
  guard.observe(attack_outcome());
  guard.observe(attack_outcome());
  EXPECT_FALSE(guard.detected());
  guard.observe(attack_outcome());
  EXPECT_TRUE(guard.detected());
}

TEST(PccGuard, ConclusiveExperimentsAreNotSuspicious) {
  GuardHarness h;
  PccGuard guard{h.sender};
  auto o = attack_outcome();
  o.conclusive = true;  // a working experiment, even with probe loss
  for (int i = 0; i < 10; ++i) guard.observe(o);
  EXPECT_FALSE(guard.detected());
}

TEST(SignalVote, QuorumSemantics) {
  auto yes = [] { return true; };
  auto no = [] { return false; };
  EXPECT_TRUE(SignalVote({yes, yes, no}, 2).confirm());
  EXPECT_FALSE(SignalVote({yes, no, no}, 2).confirm());
  EXPECT_TRUE(SignalVote({no, no}, 0).confirm());
}

TEST(ActiveProber, ConfirmsRealFailure) {
  sim::Scheduler sched;
  ActiveProber prober{sched, {}, [] { return false; }};  // no probe answered
  bool confirmed = false;
  sim::Duration latency = 0;
  prober.verify([&](bool ok, sim::Duration lat) {
    confirmed = ok;
    latency = lat;
  });
  sched.run();
  EXPECT_TRUE(confirmed);
  EXPECT_EQ(latency, 3 * sim::millis(100));  // the §5 decision-time cost
}

TEST(ActiveProber, RejectsFakeFailure) {
  sim::Scheduler sched;
  ActiveProber prober{sched, {}, [] { return true; }};  // path is fine
  bool confirmed = true;
  prober.verify([&](bool ok, sim::Duration) { confirmed = ok; });
  sched.run();
  EXPECT_FALSE(confirmed);
}

TEST(ActiveProber, MixedProbesFollowThreshold) {
  sim::Scheduler sched;
  int call = 0;
  ActiveProber::Config cfg;
  cfg.probes = 3;
  cfg.required_failures = 2;
  ActiveProber prober{sched, cfg, [&] { return ++call == 1; }};  // 1 ok, 2 fail
  bool confirmed = false;
  prober.verify([&](bool ok, sim::Duration) { confirmed = ok; });
  sched.run();
  EXPECT_TRUE(confirmed);
}

}  // namespace
}  // namespace intox::supervisor
