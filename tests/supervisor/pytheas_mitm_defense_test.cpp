// §5 Pytheas defense vs the §4.1 MitM variant — the scenario the paper's
// defense paragraph literally describes: "If only a few clients exhibit
// low throughput while others exhibit high throughput, this is
// indicative of either groups being ill-formed or malicious inputs from
// part of the group population. Accordingly, the low-throughput clients
// can be tackled separately, removing their impact on the larger
// population."
//
// Under the MitM attack the reports are *honest* and bimodal: victims
// genuinely measure terrible QoE on the good arm, everyone else measures
// great QoE. The guard's robust outlier quarantine separates exactly the
// low mode, so the group decision keeps serving the majority well (the
// victims are collateral the MitM already controls either way).
#include <gtest/gtest.h>

#include "pytheas/experiment.hpp"
#include "supervisor/pytheas_guard.hpp"

namespace intox::supervisor {
namespace {

TEST(PytheasMitmDefense, QuarantineKeepsGroupOnGoodArm) {
  pytheas::MitmQoeConfig cfg;  // 45% victims: flips the undefended group
  const auto undefended = pytheas::run_mitm_qoe_experiment(cfg);
  ASSERT_GT(undefended.flipped_fraction, 0.8);

  auto guard = std::make_shared<PytheasGuard>();
  const auto defended = pytheas::run_mitm_qoe_experiment(cfg, guard);
  EXPECT_LT(defended.flipped_fraction, 0.1);
  EXPECT_GT(guard->quarantined(), 0u);
}

TEST(PytheasMitmDefense, UntouchedMajorityKeepsItsQoe) {
  pytheas::MitmQoeConfig cfg;
  const auto undefended = pytheas::run_mitm_qoe_experiment(cfg);
  auto guard = std::make_shared<PytheasGuard>();
  const auto defended = pytheas::run_mitm_qoe_experiment(cfg, guard);
  // The 55% whose traffic was never touched keep their quality instead
  // of inheriting the group flip.
  EXPECT_GT(defended.untouched_after, undefended.untouched_after + 1.0);
  EXPECT_NEAR(defended.untouched_after, defended.untouched_before, 0.25);
}

TEST(PytheasMitmDefense, NoAttackNoInterference) {
  pytheas::MitmQoeConfig cfg;
  cfg.attack_start_epoch = cfg.epochs + 1;
  auto guard = std::make_shared<PytheasGuard>();
  const auto r = pytheas::run_mitm_qoe_experiment(cfg, guard);
  EXPECT_NEAR(r.untouched_after, r.untouched_before, 0.2);
  EXPECT_LT(r.flipped_fraction, 0.05);
}

}  // namespace
}  // namespace intox::supervisor
