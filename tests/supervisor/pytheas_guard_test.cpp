#include "supervisor/pytheas_guard.hpp"

#include <gtest/gtest.h>

#include "pytheas/experiment.hpp"

namespace intox::supervisor {
namespace {

using pytheas::QoeReport;
using pytheas::SessionFeatures;

const SessionFeatures kGroup{.asn = 9, .location = "zrh", .content = "vod"};

TEST(PytheasGuard, AdmitsHonestDistribution) {
  PytheasGuard guard;
  sim::Rng rng{1};
  std::uint64_t admitted = 0;
  for (int epoch = 0; epoch < 20; ++epoch) {
    for (pytheas::SessionId s = 1; s <= 50; ++s) {
      QoeReport r{s, 0, 4.5 + rng.normal(0.0, 0.3),
                  sim::seconds(static_cast<double>(epoch))};
      admitted += guard.admit(kGroup, r);
    }
  }
  EXPECT_GT(admitted, 950u);  // ~all honest reports pass
}

TEST(PytheasGuard, RateLimitsAmplifiers) {
  PytheasGuard guard;
  std::uint64_t admitted = 0;
  for (int i = 0; i < 10; ++i) {
    admitted += guard.admit(kGroup, {7, 0, 4.5, sim::seconds(1)});
  }
  EXPECT_EQ(admitted, 2u);  // default window cap
  EXPECT_EQ(guard.rate_limited(), 8u);
}

TEST(PytheasGuard, RateWindowSlides) {
  PytheasGuard guard;
  EXPECT_TRUE(guard.admit(kGroup, {7, 0, 4.5, sim::seconds(1)}));
  EXPECT_TRUE(guard.admit(kGroup, {7, 0, 4.5, sim::seconds(1)}));
  EXPECT_FALSE(guard.admit(kGroup, {7, 0, 4.5, sim::seconds(1)}));
  // Next epoch: fresh budget.
  EXPECT_TRUE(guard.admit(kGroup, {7, 0, 4.5, sim::seconds(2)}));
}

TEST(PytheasGuard, QuarantinesExtremeLies) {
  PytheasGuard guard;
  sim::Rng rng{2};
  // Warm up with honest reports around 4.5.
  for (int i = 0; i < 60; ++i) {
    guard.admit(kGroup, {static_cast<pytheas::SessionId>(100 + i), 0,
                         4.5 + rng.normal(0.0, 0.2),
                         sim::seconds(static_cast<double>(i) / 10.0)});
  }
  // A bot slams QoE 0 on the same arm.
  EXPECT_FALSE(guard.admit(kGroup, {999, 0, 0.0, sim::seconds(10)}));
  EXPECT_GT(guard.quarantined(), 0u);
  // An honest-looking report still passes.
  EXPECT_TRUE(guard.admit(kGroup, {998, 0, 4.2, sim::seconds(10)}));
}

TEST(PytheasGuard, PerArmHistoriesAreIndependent) {
  PytheasGuard guard;
  sim::Rng rng{3};
  for (int i = 0; i < 60; ++i) {
    guard.admit(kGroup, {static_cast<pytheas::SessionId>(100 + i), 0,
                         4.5 + rng.normal(0.0, 0.2),
                         sim::seconds(static_cast<double>(i) / 10.0)});
  }
  // Arm 1 has no history: its first (even low) report must be admitted
  // (warmup), not judged against arm 0's distribution.
  EXPECT_TRUE(guard.admit(kGroup, {500, 1, 2.8, sim::seconds(10)}));
}

TEST(PytheasGuard, DefenseRestoresQoeUnderPoisoning) {
  // End-to-end: the poisoning attack that flips the undefended group is
  // neutralized by the guard.
  pytheas::PoisonConfig cfg;
  cfg.bot_sessions = 40;
  const auto undefended = pytheas::run_poisoning_experiment(cfg);
  ASSERT_GT(undefended.flipped_fraction, 0.5);

  auto guard = std::make_shared<PytheasGuard>();
  const auto defended = pytheas::run_poisoning_experiment(cfg, guard);
  EXPECT_LT(defended.flipped_fraction, 0.1);
  EXPECT_GT(defended.mean_qoe_after, undefended.mean_qoe_after + 0.8);
  EXPECT_GT(defended.filtered_reports, 0u);
}

TEST(PytheasGuard, DefenseDoesNotHurtCleanOperation) {
  pytheas::PoisonConfig cfg;
  cfg.bot_sessions = 0;
  const auto clean = pytheas::run_poisoning_experiment(cfg);
  auto guard = std::make_shared<PytheasGuard>();
  const auto guarded = pytheas::run_poisoning_experiment(cfg, guard);
  EXPECT_NEAR(guarded.mean_qoe_after, clean.mean_qoe_after, 0.2);
}

}  // namespace
}  // namespace intox::supervisor
