// TCP substrate tests: handshake, transfer, loss recovery, flow control.
#include "tcp/tcp.hpp"

#include <gtest/gtest.h>

#include "sim/link.hpp"

namespace intox::tcp {
namespace {

// Sender and receiver joined by two links (data / ack path).
struct Pipe {
  sim::Scheduler sched;
  TcpConfig cfg;
  std::unique_ptr<sim::Link> fwd;
  std::unique_ptr<sim::Link> rev;
  std::unique_ptr<TcpSender> sender;
  std::unique_ptr<TcpReceiver> receiver;

  explicit Pipe(double rate_bps = 10e6, sim::Duration delay = sim::millis(10),
                std::uint32_t queue = 64 * 1024) {
    sim::LinkConfig fc;
    fc.rate_bps = rate_bps;
    fc.prop_delay = delay;
    fc.queue_limit_bytes = queue;
    sim::LinkConfig rc;
    rc.rate_bps = 1e9;
    rc.prop_delay = delay;

    rev = std::make_unique<sim::Link>(
        sched, rc, [this](net::Packet p) { sender->on_packet(p); });
    receiver = std::make_unique<TcpReceiver>(
        sched, cfg, [this](net::Packet p) { rev->transmit(std::move(p)); });
    fwd = std::make_unique<sim::Link>(
        sched, fc, [this](net::Packet p) { receiver->on_packet(p); });
    net::FiveTuple flow{net::Ipv4Addr{1, 1, 1, 1}, net::Ipv4Addr{2, 2, 2, 2},
                       40000, 80, net::IpProto::kTcp};
    sender = std::make_unique<TcpSender>(
        sched, cfg, flow,
        [this](net::Packet p) { fwd->transmit(std::move(p)); });
  }
};

TEST(Tcp, HandshakeEstablishes) {
  Pipe pipe;
  pipe.sender->start(100000);
  pipe.sched.run_until(sim::millis(100));
  EXPECT_EQ(pipe.sender->state(), TcpState::kEstablished);
}

TEST(Tcp, TransfersExactByteCount) {
  Pipe pipe;
  pipe.sender->start(200000);
  pipe.sched.run_until(sim::seconds(10));
  EXPECT_EQ(pipe.receiver->bytes_received(), 200000u);
  EXPECT_TRUE(pipe.receiver->saw_fin());
  EXPECT_EQ(pipe.sender->state(), TcpState::kDone);
}

TEST(Tcp, SlowStartGrowsCwndExponentially) {
  Pipe pipe{100e6};
  pipe.sender->start(2'000'000);
  pipe.sched.run_until(sim::millis(200));  // a few RTTs (RTT = 20 ms)
  EXPECT_GT(pipe.sender->cwnd_segments(), 8.0);
}

TEST(Tcp, LostSegmentRecoveredByFastRetransmit) {
  Pipe pipe;
  int count = 0;
  pipe.fwd->set_tap([&](net::Packet& p) {
    // Drop exactly the 20th data segment.
    if (p.tcp() && p.payload_bytes > 0 && ++count == 20) {
      return sim::TapAction::kDrop;
    }
    return sim::TapAction::kForward;
  });
  pipe.sender->start(500000);
  pipe.sched.run_until(sim::seconds(20));
  EXPECT_EQ(pipe.receiver->bytes_received(), 500000u);
  EXPECT_GE(pipe.sender->counters().fast_retransmits, 1u);
  EXPECT_GT(pipe.receiver->dup_acks_sent(), 0u);
}

TEST(Tcp, TotalBlackoutTriggersRtoBackoff) {
  Pipe pipe;
  pipe.sender->start(0);  // unbounded stream
  pipe.sched.run_until(sim::seconds(2));
  ASSERT_EQ(pipe.sender->state(), TcpState::kEstablished);
  const auto timeouts_before = pipe.sender->counters().timeouts;

  pipe.fwd->set_up(false);  // hard failure
  pipe.sched.run_until(sim::seconds(12));
  // Multiple RTO firings with exponential backoff, cwnd collapsed to 1.
  EXPECT_GE(pipe.sender->counters().timeouts, timeouts_before + 3);
  EXPECT_LE(pipe.sender->counters().timeouts, timeouts_before + 8);
  EXPECT_DOUBLE_EQ(pipe.sender->cwnd_segments(), 1.0);

  pipe.fwd->set_up(true);  // repair
  const auto delivered_before = pipe.sender->delivered_bytes();
  pipe.sched.run_until(sim::seconds(40));
  pipe.sender->stop();
  EXPECT_GT(pipe.sender->delivered_bytes(), delivered_before + 100000);
}

TEST(Tcp, RandomLossStillCompletes) {
  Pipe pipe;
  sim::Rng rng{42};
  pipe.fwd->set_tap([&](net::Packet& p) {
    if (p.payload_bytes > 0 && rng.bernoulli(0.02)) {
      return sim::TapAction::kDrop;
    }
    return sim::TapAction::kForward;
  });
  pipe.sender->start(300000);
  pipe.sched.run_until(sim::seconds(60));
  EXPECT_EQ(pipe.receiver->bytes_received(), 300000u);
  EXPECT_EQ(pipe.sender->state(), TcpState::kDone);
}

TEST(Tcp, CongestionSettlesNearBottleneck) {
  Pipe pipe{5e6, sim::millis(10), 32 * 1024};
  pipe.sender->start(0);
  pipe.sched.run_until(sim::seconds(30));
  pipe.sender->stop();
  // Goodput over the run approaches the 5 Mb/s bottleneck.
  const double goodput_bps =
      static_cast<double>(pipe.sender->delivered_bytes()) * 8.0 / 30.0;
  EXPECT_GT(goodput_bps, 3.0e6);
  EXPECT_LT(goodput_bps, 5.2e6);
  // AIMD sawtooth: at least a few multiplicative decreases happened.
  EXPECT_GE(pipe.sender->counters().fast_retransmits +
                pipe.sender->counters().rto_retransmits,
            3u);
}

TEST(Tcp, RttEstimateTracksPath) {
  Pipe pipe{10e6, sim::millis(25)};
  pipe.sender->start(0);
  pipe.sched.run_until(sim::seconds(5));
  pipe.sender->stop();
  // RTT = 50 ms propagation + queueing.
  EXPECT_GT(pipe.sender->srtt_seconds(), 0.045);
  EXPECT_LT(pipe.sender->srtt_seconds(), 0.15);
}

TEST(Tcp, ReceiverWindowThrottlesSender) {
  Pipe fast{100e6};
  fast.receiver->set_advertised_window(8 * 1448);  // 8 segments max
  fast.sender->start(0);
  fast.sched.run_until(sim::seconds(5));
  fast.sender->stop();
  // Throughput pinned at ~rwnd/RTT = 8*1448*8/0.02 = 4.6 Mb/s, far below
  // the 100 Mb/s link.
  const double goodput_bps =
      static_cast<double>(fast.sender->delivered_bytes()) * 8.0 / 5.0;
  EXPECT_LT(goodput_bps, 8e6);
  EXPECT_GT(goodput_bps, 2e6);
}

TEST(Tcp, SynLossRecovered) {
  Pipe pipe;
  int syns = 0;
  pipe.fwd->set_tap([&](net::Packet& p) {
    if (p.tcp() && p.tcp()->syn && ++syns == 1) {
      return sim::TapAction::kDrop;  // lose the first SYN
    }
    return sim::TapAction::kForward;
  });
  pipe.sender->start(50000);
  pipe.sched.run_until(sim::seconds(10));
  EXPECT_EQ(pipe.receiver->bytes_received(), 50000u);
  EXPECT_EQ(syns, 2);
}

}  // namespace
}  // namespace intox::tcp
