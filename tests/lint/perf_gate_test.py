#!/usr/bin/env python3
"""check_perf_gate.py must never un-guard a floor silently.

Regression under test: `--update` used to print "dropped (not in ...)"
for a baseline-named sweep missing from the fresh reports and exit 0 —
the documented re-baseline recipe would then commit a baseline without
the floor, and the gate never checked that sweep again. Missing sweeps
are now a hard failure in both modes, with an explicit --allow-drop
escape hatch for deliberate benchmark deletions.

Usage: perf_gate_test.py <path-to-check_perf_gate.py>
"""

import json
import os
import subprocess
import sys
import tempfile

def fail(msg):
    print(f"perf_gate_test: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def write_json(path, doc):
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f)
        f.write("\n")


def gate(script, *args):
    return subprocess.run([sys.executable, script, *args],
                          capture_output=True, text=True, timeout=60)


def setup(tmp, baseline_sweeps, report_sweeps):
    baselines = os.path.join(tmp, "baselines")
    reports = os.path.join(tmp, "reports")
    os.makedirs(baselines, exist_ok=True)
    os.makedirs(reports, exist_ok=True)
    write_json(os.path.join(baselines, "core.json"), {
        "schema": "intox.perf_baseline.v1",
        "family": "CORE",
        "tolerance": 0.5,
        "sweeps": baseline_sweeps,
    })
    write_json(os.path.join(reports, "BENCH_CORE.json"), {
        "schema": "intox.bench_report.v1",
        "family": "CORE",
        "threads_requested": 0,
        "sweeps": [{"sweep": name, "trials": 10, "threads": 1,
                    "wall_s": 1.0, "trials_per_s": tps}
                   for name, tps in report_sweeps.items()],
    })
    return baselines, reports


def main():
    if len(sys.argv) != 2:
        fail("usage: perf_gate_test.py <check_perf_gate.py>")
    script = sys.argv[1]

    # Healthy pass: floors hold.
    with tempfile.TemporaryDirectory() as tmp:
        baselines, reports = setup(
            tmp, {"sched": {"trials_per_s": 100.0}}, {"sched": 120.0})
        res = gate(script, "--reports", reports, "--baselines", baselines)
        if res.returncode != 0:
            fail(f"healthy check failed: {res.stderr}")

    # Regression detection still works.
    with tempfile.TemporaryDirectory() as tmp:
        baselines, reports = setup(
            tmp, {"sched": {"trials_per_s": 100.0}}, {"sched": 10.0})
        res = gate(script, "--reports", reports, "--baselines", baselines)
        if res.returncode == 0:
            fail("a 10x throughput drop passed the gate")

    # check: a baseline-named sweep absent from the report is a failure.
    with tempfile.TemporaryDirectory() as tmp:
        baselines, reports = setup(
            tmp, {"sched": {"trials_per_s": 100.0}}, {"other": 500.0})
        res = gate(script, "--reports", reports, "--baselines", baselines)
        if res.returncode == 0:
            fail("check passed with the baseline sweep missing from "
                 "the report")

    # check: a baseline that guards nothing is a failure, not a no-op.
    with tempfile.TemporaryDirectory() as tmp:
        baselines, reports = setup(tmp, {}, {"sched": 100.0})
        res = gate(script, "--reports", reports, "--baselines", baselines)
        if res.returncode == 0:
            fail("an empty baseline (guards no sweeps) passed the gate")

    # --update: missing baseline sweep must hard-fail...
    with tempfile.TemporaryDirectory() as tmp:
        baselines, reports = setup(
            tmp, {"sched": {"trials_per_s": 100.0}}, {"other": 500.0})
        baseline_path = os.path.join(baselines, "core.json")
        with open(baseline_path, encoding="utf-8") as f:
            before = f.read()
        res = gate(script, "--reports", reports, "--baselines", baselines,
                   "--update")
        if res.returncode == 0:
            fail("--update silently dropped a baseline sweep (the "
                 "un-guarded-floor regression)")
        with open(baseline_path, encoding="utf-8") as f:
            if f.read() != before:
                fail("--update rewrote the baseline despite failing")

        # ...unless the drop is explicit.
        res = gate(script, "--reports", reports, "--baselines", baselines,
                   "--update", "--allow-drop", "sched")
        if res.returncode != 0:
            fail(f"--update --allow-drop failed: {res.stderr}")
        with open(baseline_path, encoding="utf-8") as f:
            rewritten = json.load(f)
        if "sched" in rewritten["sweeps"]:
            fail("--allow-drop kept the dropped sweep")
        if rewritten["sweeps"]["other"]["trials_per_s"] != 500.0:
            fail("--update did not record the fresh throughput")

    print("perf_gate_test: OK")


if __name__ == "__main__":
    main()
