#!/usr/bin/env python3
"""Fixture tests for intox_lint.

For every check the corpus under tests/lint/fixtures/ holds a
known-bad snippet that must fire, a known-good twin that must not, and
a pragma-suppressed case. The corpus is a mini-repo (src/, bench/,
tests/) so the path-scoped rules behave exactly as on the real tree.

Usage: lint_fixture_test.py <path-to-intox_lint> <fixtures-dir>
"""

import re
import subprocess
import sys
import tempfile
from pathlib import Path

FINDING_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+): \[(?P<check>[a-z-]+)\] (?P<msg>.+)$")

# (path, line, check) triples that the corpus must produce. Lines are
# load-bearing: a finding that fires on the wrong line is a bug.
EXPECTED = {
    ("bench/bench_clock_bad.cpp", 9, "determinism"),
    ("bench/bench_clock_bad.cpp", 10, "determinism"),
    ("bench/bench_cli_bad.cpp", 11, "cli"),
    ("bench/bench_cli_bad.cpp", 12, "cli"),
    ("src/net/header_bad.hpp", 1, "header"),       # missing #pragma once
    ("src/net/header_bad.hpp", 4, "header"),       # <iostream>
    ("src/net/header_bad.hpp", 7, "header"),       # using namespace
    ("src/obs/metrics_bad.cpp", 9, "metrics"),
    ("src/obs/metrics_bad.cpp", 10, "metrics"),
    ("src/obs/metrics_bad.cpp", 11, "metrics"),
    ("src/obs/metrics_bad.cpp", 12, "metrics"),
    ("src/obs/metrics_bad.cpp", 13, "metrics"),
    ("src/obs/metrics_bad.cpp", 19, "metrics"),    # duplicate site
    ("src/sim/determinism_bad.cpp", 12, "determinism"),  # random_device
    ("src/sim/determinism_bad.cpp", 17, "determinism"),  # srand
    ("src/sim/determinism_bad.cpp", 18, "determinism"),  # rand()
    ("src/sim/determinism_bad.cpp", 22, "determinism"),  # system_clock
    ("src/sim/determinism_bad.cpp", 29, "determinism"),  # ::time()
    ("src/sim/determinism_bad.cpp", 33, "determinism"),  # Rng(42)
    ("src/sim/pragma_stale_bad.cpp", 7, "pragma"),   # stale suppression
    ("src/sim/pragma_stale_bad.cpp", 11, "pragma"),  # unknown check name
    ("src/sim/pragma_bare_bad.cpp", 9, "pragma"),    # no -- justification
    ("src/sim/pragma_bare_bad.cpp", 10, "determinism"),  # not suppressed
    ("src/validate/invariant_bad.cpp", 10, "invariant"),  # ++
    ("src/validate/invariant_bad.cpp", 15, "invariant"),  # --
    ("src/validate/invariant_bad.cpp", 20, "invariant"),  # =
    ("src/validate/invariant_bad.cpp", 24, "invariant"),  # +=
    ("src/validate/invariant_bad.cpp", 28, "invariant"),  # .erase()
    ("tests/determinism_exempt.cpp", 21, "invariant"),
}

failures = []


def check(cond, what):
    if cond:
        print(f"ok   {what}")
    else:
        print(f"FAIL {what}")
        failures.append(what)


def run(binary, *args):
    return subprocess.run([binary, *args], capture_output=True, text=True)


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    binary, fixtures = sys.argv[1], Path(sys.argv[2])

    # --- full corpus: exact finding set -------------------------------
    proc = run(binary, "--root", str(fixtures))
    check(proc.returncode == 1, "corpus scan exits 1 (findings present)")

    got = set()
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        check(m is not None, f"output line is file:line: [check] msg: {line!r}")
        if m:
            got.add((m["path"], int(m["line"]), m["check"]))

    for triple in sorted(EXPECTED):
        check(triple in got, f"expected finding fired: {triple}")
    for triple in sorted(got - EXPECTED):
        check(False, f"unexpected finding: {triple}")

    # Good twins and suppressed cases must be silent.
    noisy = {p for (p, _, _) in got}
    for quiet in [
        "bench/bench_cli_good.cpp",
        "bench/bench_cli_suppressed.cpp",
        "src/sim/determinism_good.cpp",
        "src/sim/determinism_suppressed.cpp",
        "src/validate/invariant_good.cpp",
        "src/validate/invariant_suppressed.cpp",
        "src/obs/metrics_good.cpp",
        "src/obs/metrics_suppressed.cpp",
        "src/net/header_good.hpp",
        "src/net/header_suppressed.hpp",
    ]:
        assert (fixtures / quiet).is_file(), f"fixture missing: {quiet}"
        check(quiet not in noisy, f"no findings in {quiet}")

    # --- good-only subset exits 0 -------------------------------------
    proc = run(
        binary, "--root", str(fixtures),
        "src/sim/determinism_good.cpp", "src/validate/invariant_good.cpp",
        "src/obs/metrics_good.cpp", "src/net/header_good.hpp",
    )
    check(proc.returncode == 0, "good-only subset exits 0")
    check(proc.stdout == "", "good-only subset prints no findings")

    # --- seeding a violation into a clean mini-repo flips the exit ----
    # (the acceptance-criteria scenario, end to end: clean tree -> 0,
    # then one std::random_device in src/sim/ -> non-zero + file:line)
    with tempfile.TemporaryDirectory() as tmp:
        simdir = Path(tmp) / "src" / "sim"
        simdir.mkdir(parents=True)
        clean = simdir / "clean.cpp"
        clean.write_text("namespace x { inline int f() { return 1; } }\n")
        proc = run(binary, "--root", tmp)
        check(proc.returncode == 0, "seeded mini-repo starts clean")

        (simdir / "dirty.cpp").write_text(
            "#include <random>\n"
            "namespace x { inline unsigned f() {\n"
            "  std::random_device rd;  /* injected */\n"
            "  return rd(); } }\n"
        )
        proc = run(binary, "--root", tmp)
        check(proc.returncode == 1, "injected random_device flips exit to 1")
        check("src/sim/dirty.cpp:3" in proc.stdout,
              "injected finding reported with file:line")

    # --- CLI surface --------------------------------------------------
    proc = run(binary, "--list-checks")
    check(proc.returncode == 0 and "determinism" in proc.stdout
          and "invariant" in proc.stdout, "--list-checks lists the checks")

    proc = run(binary, "--root", str(fixtures), "--check", "header")
    lines = [l for l in proc.stdout.splitlines() if l]
    check(lines and all("[header]" in l for l in lines),
          "--check header restricts the run to one check")

    proc = run(binary, "--root", str(fixtures / "does-not-exist"))
    check(proc.returncode == 2, "bad --root exits 2")

    print(f"\n{len(failures)} failures")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
