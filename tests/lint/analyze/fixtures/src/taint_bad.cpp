// Fixture: a registered scenario whose run function reaches entropy,
// a libc entropy call, and unordered iteration. All three must fire.
#include <cstdlib>
#include <random>
#include <unordered_map>

namespace fixture {

unsigned jitter() {
  std::random_device rd;
  return rd() + static_cast<unsigned>(std::rand());
}

int histogram_mode(int n) {
  std::unordered_map<int, int> counts;
  for (int i = 0; i < n; ++i) counts[i % 7] += 1;
  int best = 0;
  for (const auto& [value, count] : counts) {
    if (count > best) best = count;
  }
  return best;
}

int run_fixture(int trials) {
  int acc = histogram_mode(trials);
  for (int i = 0; i < trials; ++i) acc += static_cast<int>(jitter());
  return acc;
}

INTOX_REGISTER_SCENARIO(kFixture, {"fixture", run_fixture});

}  // namespace fixture
