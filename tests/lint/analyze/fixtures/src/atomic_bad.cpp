// Fixture: a marked hot lane paying the defaulted seq_cst fence. Must
// fire exactly once; the relaxed read below keeps the pairing check
// quiet (seq_cst counts as both sides).
#include <atomic>
#include <cstdint>

namespace fixture {

std::atomic<std::uint64_t> g_count{0};

void hot_increment() {
  // intox-analyze: hot-lane
  g_count.fetch_add(1);
}

std::uint64_t read_count() {
  return g_count.load(std::memory_order_relaxed);
}

}  // namespace fixture
