// Fixture: a registered fatal-signal handler that allocates, prints,
// and locks. Every vice on the handler path must fire.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

namespace fixture {

std::mutex g_mu;

void crash_handler(int sig) {
  std::string msg = "fatal";
  std::fprintf(stderr, "%s %d\n", msg.c_str(), sig);
  std::lock_guard<std::mutex> hold(g_mu);
  std::free(nullptr);
}

void install() { std::signal(SIGSEGV, crash_handler); }

}  // namespace fixture
