// Fixture: classic AB/BA ordering inversion across two functions. The
// cycle must fire exactly once, anchored at the edge that closes it.
#include <mutex>

namespace fixture {

std::mutex mu_a;
std::mutex mu_b;

void take_ab() {
  std::lock_guard<std::mutex> a(mu_a);
  std::lock_guard<std::mutex> b(mu_b);
}

void take_ba() {
  std::lock_guard<std::mutex> b(mu_b);
  std::lock_guard<std::mutex> a(mu_a);
}

}  // namespace fixture
