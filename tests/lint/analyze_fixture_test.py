#!/usr/bin/env python3
"""Fixture tests for intox_analyze.

The corpus under tests/lint/analyze/fixtures/ holds one intentionally
bad file per whole-program check (sigsafe, taint, lockorder, atomics);
each must produce its exact findings, and nothing else. The real tree
must come out clean under the checked-in baseline, and the sigsafe
--explain output must show the real flightrec dump entry points in the
reachable set.

Usage: analyze_fixture_test.py <path-to-intox_analyze> <fixtures-dir> <repo-root>
"""

import re
import subprocess
import sys
from pathlib import Path

FINDING_RE = re.compile(
    r"^(?P<path>[^:]+):(?P<line>\d+): \[(?P<check>[a-z-]+)\] (?P<msg>.+)$")

# (path, line, check) triples the corpus must produce. Lines are
# load-bearing: a finding that fires on the wrong line is a bug.
EXPECTED = {
    ("src/atomic_bad.cpp", 13, "atomics"),   # implicit seq_cst in hot lane
    ("src/lock_bad.cpp", 17, "lockorder"),   # AB/BA cycle, closing edge
    ("src/sig_bad.cpp", 14, "sigsafe"),      # std::string on handler path
    ("src/sig_bad.cpp", 15, "sigsafe"),      # fprintf
    ("src/sig_bad.cpp", 16, "sigsafe"),      # lock acquire
    ("src/sig_bad.cpp", 17, "sigsafe"),      # free
    ("src/taint_bad.cpp", 10, "taint"),      # std::random_device
    ("src/taint_bad.cpp", 11, "taint"),      # std::rand
    ("src/taint_bad.cpp", 18, "taint"),      # unordered iteration
}

failures = []


def check(cond, what):
    if cond:
        print(f"ok   {what}")
    else:
        print(f"FAIL {what}")
        failures.append(what)


def run(binary, *args):
    return subprocess.run([binary, *args], capture_output=True, text=True)


def main():
    if len(sys.argv) != 4:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    binary, fixtures, repo = sys.argv[1], Path(sys.argv[2]), Path(sys.argv[3])

    # --- corpus: exact finding set ------------------------------------
    proc = run(binary, "--root", str(fixtures))
    check(proc.returncode == 1, "corpus scan exits 1 (findings present)")

    got = set()
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        check(m is not None, f"output line is file:line: [check] msg: {line!r}")
        if m:
            got.add((m["path"], int(m["line"]), m["check"]))

    for triple in sorted(EXPECTED):
        check(triple in got, f"expected finding fired: {triple}")
    for triple in sorted(got - EXPECTED):
        check(False, f"unexpected finding: {triple}")

    # --- per-check isolation: each bad file trips only its own check --
    for check_name, path in [
        ("sigsafe", "src/sig_bad.cpp"),
        ("taint", "src/taint_bad.cpp"),
        ("lockorder", "src/lock_bad.cpp"),
        ("atomics", "src/atomic_bad.cpp"),
    ]:
        proc = run(binary, "--root", str(fixtures), "--check", check_name)
        lines = [l for l in proc.stdout.splitlines() if l]
        check(lines and all(f"[{check_name}]" in l for l in lines),
              f"--check {check_name} restricts the run")
        check(all(l.startswith(path) for l in lines),
              f"all {check_name} findings come from {path}")

    # --- explain: the fixture handler is in the reachable set ---------
    proc = run(binary, "--root", str(fixtures), "--check", "sigsafe",
               "--explain", "sigsafe")
    check("crash_handler" in proc.stdout,
          "--explain sigsafe lists the fixture handler as reachable")

    # --- real tree: clean under the checked-in baseline ---------------
    baseline = repo / "tools" / "intox_analyze" / "baseline.txt"
    assert baseline.is_file(), f"baseline missing: {baseline}"
    proc = run(binary, "--root", str(repo), "--baseline", str(baseline))
    check(proc.returncode == 0,
          "real tree is clean under the baseline "
          f"(stdout: {proc.stdout.strip()!r})")

    # --- real tree: flightrec dump entry points are proven reachable --
    proc = run(binary, "--root", str(repo), "--baseline", str(baseline),
               "--check", "sigsafe", "--explain", "sigsafe")
    for fn in ["flightrec_dump", "flightrec_dump_on_crash", "crash_handler"]:
        check(fn in proc.stdout,
              f"--explain sigsafe covers real dump path: {fn}")

    # --- CLI surface --------------------------------------------------
    proc = run(binary, "--list-checks")
    check(proc.returncode == 0 and "sigsafe" in proc.stdout
          and "lockorder" in proc.stdout, "--list-checks lists the checks")

    proc = run(binary, "--root", str(fixtures / "does-not-exist"))
    check(proc.returncode == 2, "bad --root exits 2")

    print(f"\n{len(failures)} failures")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
