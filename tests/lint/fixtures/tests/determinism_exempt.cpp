// Fixture: tests/ are exempt from the determinism check (a test may
// legitimately time out on the host clock or stress with real
// entropy). Nothing here may fire.
#include <chrono>
#include <random>

namespace intox::fixture {

bool waited_too_long(std::chrono::steady_clock::time_point deadline) {
  return std::chrono::steady_clock::now() > deadline;
}

unsigned stress_seed() {
  std::random_device rd;
  return rd();
}

// ... but invariant hygiene still applies everywhere, including tests:
#define INTOX_INVARIANT(cond, msg) ((void)(cond))
inline void still_checked(int i, int n) {
  INTOX_INVARIANT(i++ < n, "side effect in a test invariant");  // line 21
}

}  // namespace intox::fixture
