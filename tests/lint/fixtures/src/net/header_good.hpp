// Fixture: a hygienic header — #pragma once, fully qualified names,
// stream types forward-declared via <iosfwd> instead of <iostream>.
// Must produce zero findings. The words "using" and "namespace" apart
// must not fire.
#pragma once

#include <iosfwd>
#include <vector>

namespace intox::fixture {

// using a type alias inside a namespace is fine:
using IntVec = std::vector<int>;

void dump(std::ostream& os, const IntVec& v);

}  // namespace intox::fixture
