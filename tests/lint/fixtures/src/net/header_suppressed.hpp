// Fixture: suppressed header findings. A header that genuinely needs
// <iostream> (it defines inline operator<< used by tests) carries the
// pragma; must produce zero findings.
#pragma once

// This fixture header exists to print; the include is the point.
// intox-lint: allow(header)  -- printing is this header's purpose
#include <iostream>

namespace intox::fixture {

struct Pretty {
  int value = 0;
};

inline std::ostream& operator<<(std::ostream& os, const Pretty& p) {
  return os << "Pretty{" << p.value << "}";
}

}  // namespace intox::fixture
