// Fixture: every header-hygiene finding — missing #pragma once
// (flagged at line 1), using namespace at header scope, <iostream> in
// a src/ header. Each must fire.
#include <iostream>
#include <vector>

using namespace std;

namespace intox::fixture {

inline void debug_dump(const vector<int>& v) {
  for (int x : v) cout << x << "\n";
}

}  // namespace intox::fixture
