// Fixture: well-formed metric registrations — dotted lowercase names,
// one site each. Must produce zero findings.
#include "obs/metrics.hpp"

namespace intox::fixture {

void good_names() {
  auto& reg = obs::Registry::global();
  reg.counter("fixture.retransmits");
  reg.counter("fixture.link2.tx_bytes");
  reg.gauge("fixture.queue.depth_hwm");
  reg.histogram("fixture.rtt.micros", 0.0, 1e6, 64);
  // Non-literal names cannot be checked statically and must not trip
  // the scanner.
  const std::string dynamic = "fixture.dynamic_name";
  reg.counter(dynamic);
}

}  // namespace intox::fixture
