// Fixture: metric-name violations — bad grammar and duplicate
// registration sites. Each must fire.
#include "obs/metrics.hpp"

namespace intox::fixture {

void bad_names() {
  auto& reg = obs::Registry::global();
  reg.counter("Retransmits");         // line 9: no family, uppercase
  reg.counter("blink.Retransmits");   // line 10: uppercase component
  reg.gauge("blink..depth");          // line 11: empty component
  reg.counter("blink.retx-count");    // line 12: dash not allowed
  reg.histogram("latency", 0.0, 1.0, 10);  // line 13: single component
}

void duplicate_sites() {
  auto& reg = obs::Registry::global();
  reg.counter("fixture.dup_count");  // line 18: first site (not flagged)
  reg.counter("fixture.dup_count");  // line 19: duplicate site (flagged)
}

}  // namespace intox::fixture
