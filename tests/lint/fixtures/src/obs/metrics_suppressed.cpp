// Fixture: an intentionally shared metric under a justified pragma
// (the second registration site is the one that needs it). Must
// produce zero findings.
#include "obs/metrics.hpp"

namespace intox::fixture {

void primary_site() {
  obs::Registry::global().counter("fixture.shared_total");
}

void secondary_site() {
  // Both call paths feed one aggregate on purpose.
  // intox-lint: allow(metrics)  -- intentionally shared aggregate
  obs::Registry::global().counter("fixture.shared_total");
}

}  // namespace intox::fixture
