// Fixture: a deliberately impure invariant condition under a justified
// pragma. Must produce zero findings.
#include <atomic>

#include "validate/invariant.hpp"

namespace intox::fixture {

void checked_consume(std::atomic<int>& tokens) {
  // fetch_sub is the point: the invariant asserts the *old* value was
  // positive while consuming one token. Disabled builds accept the
  // skew; documented at the call site.
  // intox-lint: allow(invariant)  -- consuming check is the point
  INTOX_INVARIANT(tokens.fetch_sub(1) > 0, "token bucket underflow");
}

}  // namespace intox::fixture
