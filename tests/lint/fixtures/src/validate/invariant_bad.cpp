// Fixture: side effects inside INTOX_INVARIANT conditions. Each one
// changes behavior under -DINTOX_INVARIANTS_DISABLED and must fire.
#include <vector>

#include "validate/invariant.hpp"

namespace intox::fixture {

void counter_in_condition(int i, int n) {
  INTOX_INVARIANT(++i < n, "increment is a side effect");  // line 10
}

void decrement_spanning_lines(int budget) {
  INTOX_INVARIANT(
      budget-- > 0,  // line 15: condition spans lines; still caught
      "decrement is a side effect");
}

void assignment_typo(int got, int want) {
  INTOX_INVARIANT(got = want, "assignment where == was meant");  // line 20
}

void compound_assignment(int acc, int x) {
  INTOX_INVARIANT((acc += x) > 0, "compound assignment");  // line 24
}

void mutating_call(std::vector<int>& v) {
  INTOX_INVARIANT(v.erase(v.begin()) != v.end(),  // line 28
                  "erase mutates the container");
}

}  // namespace intox::fixture
