// Fixture: side-effect-free INTOX_INVARIANT conditions, including the
// lookalikes that must NOT fire (comparison operators, const member
// calls, mutation in the *message* arguments, mutation outside the
// macro).
#include <cmath>
#include <vector>

#include "validate/invariant.hpp"

namespace intox::fixture {

void comparisons(int a, int b) {
  INTOX_INVARIANT(a == b, "equality is not assignment");
  INTOX_INVARIANT(a <= b && a >= 0, "compound comparisons are fine");
  INTOX_INVARIANT(a != b || !(a < b), "negations are fine");
}

void const_calls(const std::vector<double>& v) {
  INTOX_INVARIANT(!v.empty(), "empty() is const");
  INTOX_INVARIANT(v.size() < 1000, "size() is const");
  INTOX_INVARIANT(!std::isnan(v.front()), "free predicates are fine");
}

void mutation_outside_condition(std::vector<int>& v, int x) {
  v.push_back(x);  // mutation before the check, not inside it
  INTOX_INVARIANT(v.back() == x, "reads only");
  // The check inspects only the first macro argument; ordinary format
  // arguments after the condition must not confuse it:
  INTOX_INVARIANT(x >= 0, "x was %d", x);
}

}  // namespace intox::fixture
