// Fixture: every determinism finding must fire (see lint_fixture_test).
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

#include "sim/rng.hpp"

namespace intox::fixture {

unsigned entropy_read() {
  std::random_device rd;  // line 12: banned entropy source
  return rd();
}

int libc_prng() {
  std::srand(7);       // line 17: banned seeding
  return std::rand();  // line 18: banned libc PRNG call
}

long wall_clock() {
  const auto t = std::chrono::system_clock::now();  // line 22: wall clock
  return std::chrono::duration_cast<std::chrono::seconds>(
             t.time_since_epoch())
      .count();
}

long libc_clock() {
  return ::time(nullptr);  // line 29: banned libc wall-clock call
}

double literal_seed() {
  sim::Rng rng(42);  // line 33: literal-seeded Rng in src/
  return rng.uniform();
}

}  // namespace intox::fixture
