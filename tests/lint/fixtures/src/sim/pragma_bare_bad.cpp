// Fixture: a suppression without a `-- justification` trailer is
// malformed, and a malformed pragma suppresses nothing — so both the
// pragma finding and the clock underneath it must fire.
#include <chrono>

namespace intox::fixture {

inline double unjustified_timer() {
  // intox-lint: allow(determinism)
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

}  // namespace intox::fixture
