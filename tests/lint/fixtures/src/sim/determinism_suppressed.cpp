// Fixture: pragma-suppressed determinism findings — the same code as
// the bad twin, each use carrying a justified allow pragma. Must
// produce zero findings (and zero stale-pragma findings: every pragma
// suppresses something).
#include <chrono>

namespace intox::fixture {

double perf_timer_seconds() {
  // Perf telemetry only, never feeds trial results.
  // intox-lint: allow(determinism)  -- perf telemetry only
  const auto start = std::chrono::steady_clock::now();
  // intox-lint: allow(determinism)  -- perf telemetry only
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

}  // namespace intox::fixture
