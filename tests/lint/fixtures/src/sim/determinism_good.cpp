// Fixture: the known-good twin of determinism_bad.cpp — seed plumbed
// in, substreams forked, simulation time from the scheduler. Must
// produce zero findings.
#include <cstdint>

#include "sim/rng.hpp"

namespace intox::fixture {

double trial(const sim::Rng& base, std::uint64_t trial_index) {
  sim::Rng rng = base.fork(trial_index);
  return rng.uniform();
}

// Identifiers that merely *contain* banned names must not fire.
struct Clocked {
  long time_budget = 0;
  long randomness = 0;
};

// A member named `time` is a simulation-time accessor, not libc time().
template <typename Sched>
long now_of(const Sched& sched) {
  return sched.time();
}

}  // namespace intox::fixture
