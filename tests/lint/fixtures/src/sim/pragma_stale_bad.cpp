// Fixture: suppressions that suppress nothing are themselves findings
// (the checked-in pragma baseline must not rot). Both must fire.
#include <cstdint>

namespace intox::fixture {

// intox-lint: allow(determinism)  -- justified yet stale
inline std::uint64_t nothing_to_suppress() { return 7; }  // line 8

// An unknown check name in a pragma is malformed. Fires at line 11:
// intox-lint: allow(made-up-check)  -- justified yet unknown
inline std::uint64_t also_clean() { return 8; }

}  // namespace intox::fixture
