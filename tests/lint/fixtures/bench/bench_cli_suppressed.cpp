// Fixture: a justified pragma keeps an argv index quiet (e.g. a
// microbenchmark binary that hands argv to its framework). Must be
// silent, and the pragma must not count as stale.
int main(int argc, char** argv) {
  // Framework owns the CLI; nothing scenario-shaped to forward to.
  // intox-lint: allow(cli)  -- framework owns the CLI
  const char* self = argv[0];
  (void)argc;
  return self != nullptr ? 0 : 1;
}
