// Fixture: a bench that parses its command line by hand instead of
// forwarding to the scenario registry's shim. Every argv index must
// fire the cli check at its own line.
namespace intox::fixture {
inline int atoi_stub(const char*) { return 0; }
}  // namespace intox::fixture

int main(int argc, char** argv) {
  int runs = 12;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];               // line 11
    runs = intox::fixture::atoi_stub(argv[i + 1]);  // line 12
    (void)arg;
  }
  return runs;
}
