// Fixture: benches are subject to the determinism check too (their
// stdout must be byte-identical across --threads); a wall-clock read
// must fire here exactly as it would in src/.
#include <chrono>

namespace intox::fixture {

double bench_self_timing() {
  const auto t0 = std::chrono::high_resolution_clock::now();  // line 9
  const auto t1 = std::chrono::high_resolution_clock::now();  // line 10
  return std::chrono::duration<double>(t1 - t0).count();
}

// Literal Rng seeds are allowed OUTSIDE src/ (benches pin default
// seeds on purpose), so this must NOT fire:
struct Rng {
  explicit Rng(unsigned) {}
};
inline Rng default_bench_rng() { return Rng(42); }

}  // namespace intox::fixture
