// Fixture: the sanctioned shape of a bench main — forward argc/argv
// wholesale to the scenario shim, never index argv. Must be silent.
namespace intox::scenario {
inline int run_legacy_shim(const char*, int, char**) { return 0; }
}  // namespace intox::scenario

int main(int argc, char** argv) {
  return intox::scenario::run_legacy_shim("blink.fig2", argc, argv);
}
