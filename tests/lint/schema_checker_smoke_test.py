#!/usr/bin/env python3
"""Smoke test for scripts/check_metrics_schema.py failure modes.

An unreadable, empty, or binary report must exit non-zero with exactly
one `FAIL <file>: <reason>` diagnostic line — never a traceback (a
zero-byte report used to print json's "Expecting value" riddle and
binary input escaped as an uncaught UnicodeDecodeError).

Usage: schema_checker_smoke_test.py <path-to-check_metrics_schema.py>
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

failures = []


def check(cond, what):
    if cond:
        print(f"ok   {what}")
    else:
        print(f"FAIL {what}")
        failures.append(what)


def run(script, *args):
    return subprocess.run([sys.executable, script, *args],
                          capture_output=True, text=True)


def expect_one_line_fail(script, path, what):
    proc = run(script, str(path))
    check(proc.returncode == 1, f"{what}: exits 1 (got {proc.returncode})")
    check("Traceback" not in proc.stderr, f"{what}: no traceback")
    lines = [l for l in proc.stderr.splitlines() if l.strip()]
    check(len(lines) == 1 and lines[0].startswith(f"FAIL {path}: "),
          f"{what}: single FAIL diagnostic line (got {lines!r})")


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    script = sys.argv[1]

    with tempfile.TemporaryDirectory() as tmp:
        tmpdir = Path(tmp)

        empty = tmpdir / "empty.json"
        empty.write_bytes(b"")
        expect_one_line_fail(script, empty, "zero-byte report")
        proc = run(script, str(empty))
        check("empty input file" in proc.stderr,
              "zero-byte report: diagnostic names the emptiness")

        blank = tmpdir / "blank.json"
        blank.write_bytes(b" \n\t\n")
        expect_one_line_fail(script, blank, "whitespace-only report")

        binary = tmpdir / "binary.json"
        binary.write_bytes(b"\xff\xfe\x00garbage")
        expect_one_line_fail(script, binary, "non-UTF-8 report")

        expect_one_line_fail(script, tmpdir / "missing.json",
                             "nonexistent report")

        truncated = tmpdir / "truncated.json"
        truncated.write_text('{"schema": "intox.bench_report.v1", "fam')
        expect_one_line_fail(script, truncated, "truncated JSON")

        # A valid minimal report still passes (the fix must not break
        # the happy path).
        good = tmpdir / "good.json"
        good.write_text(json.dumps({
            "schema": "intox.bench_report.v1",
            "family": "SMOKE",
            "threads_requested": 1,
            "sweeps": [],
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
            "invariants": {"mode": "count", "violations": 0,
                           "last_message": "", "recent_messages": []},
        }))
        proc = run(script, str(good))
        check(proc.returncode == 0, "valid minimal report exits 0")

        # Minimal flightrec dump and failure sidecar pass too.
        dump = tmpdir / "dump.flightrec.json"
        dump.write_text(json.dumps({
            "schema": "intox.flightrec.v1",
            "pid": 42,
            "reason": "signal:SIGSEGV",
            "detail": "",
            "scenario": "smoke",
            "types": ["none", "sched.fire", "link.drop", "invariant.raise",
                      "blink.retx", "blink.reroute", "blink.veto",
                      "pcc.decision", "pytheas.move", "attacker.action",
                      "note"],
            "invariants": {"violations": 0, "recent_messages": []},
            "dropped_threads": 0,
            "threads": [{"tid": 1, "lanes": [
                {"lane": "hot", "capacity": 4, "recorded": 6, "dropped": 2,
                 "records": [[1, 1, 0, 0, 0], [2, 1, 0, 0, 0],
                             [3, 1, 0, 0, 0], [4, 1, 0, 0, 0]]},
                {"lane": "decision", "capacity": 4, "recorded": 0,
                 "dropped": 0, "records": []},
            ]}],
        }))
        proc = run(script, str(dump))
        check(proc.returncode == 0, "valid flightrec dump exits 0")

        bad_dump = tmpdir / "bad.flightrec.json"
        bad_dump.write_text(json.dumps({
            "schema": "intox.flightrec.v1",
            "pid": 42, "reason": "manual", "detail": "", "scenario": "",
            "types": ["only-one"],
            "invariants": {"violations": 0, "recent_messages": []},
            "dropped_threads": 0, "threads": [],
        }))
        expect_one_line_fail(script, bad_dump,
                             "flightrec dump with a bad type table")

        sidecar = tmpdir / "fail.json"
        sidecar.write_text(json.dumps({
            "schema": "intox.sweep_failure.v1",
            "scenario": "smoke", "point": 3, "banner": "seed=3",
            "log": "/tmp/x.log", "flightrec": None,
        }))
        proc = run(script, str(sidecar))
        check(proc.returncode == 0, "valid failure sidecar exits 0")

        # One bad file among good ones still fails the batch.
        proc = run(script, str(good), str(empty))
        check(proc.returncode == 1, "bad file in a batch fails the batch")

        # --names cross-check: a report naming an unregistered metric
        # fails; the same report passes once the name is inventoried.
        named = tmpdir / "named.json"
        named.write_text(json.dumps({
            "schema": "intox.bench_report.v1",
            "family": "SMOKE",
            "threads_requested": 1,
            "sweeps": [],
            "metrics": {"counters": {"smoke.trials": 3}, "gauges": {},
                        "histograms": {}},
            "invariants": {"mode": "count", "violations": 0,
                           "last_message": "", "recent_messages": []},
        }))
        names = tmpdir / "names.txt"
        names.write_text("other.metric\n")
        proc = run(script, "--names", str(names), str(named))
        check(proc.returncode == 1 and "smoke.trials" in proc.stderr,
              "--names flags a metric missing from the inventory")
        names.write_text("other.metric\nsmoke.trials\n")
        proc = run(script, "--names", str(names), str(named))
        check(proc.returncode == 0, "--names passes an inventoried metric")
        proc = run(script, "--names", str(tmpdir / "no-names.txt"),
                   str(named))
        check(proc.returncode == 2, "--names with a missing file exits 2")

    print(f"\n{len(failures)} failures")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
