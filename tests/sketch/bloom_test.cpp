#include "sketch/bloom.hpp"

#include <gtest/gtest.h>

#include "net/hash.hpp"

namespace intox::sketch {
namespace {

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter f{1024, 4};
  for (std::uint64_t k = 0; k < 100; ++k) f.insert(k * 977 + 3);
  for (std::uint64_t k = 0; k < 100; ++k) EXPECT_TRUE(f.contains(k * 977 + 3));
}

TEST(BloomFilter, EmptyContainsNothing) {
  BloomFilter f{1024, 4};
  for (std::uint64_t k = 1; k < 100; ++k) EXPECT_FALSE(f.contains(k));
}

TEST(BloomFilter, EmpiricalFprTracksTheory) {
  BloomFilter f{4096, 4};
  const std::uint64_t n = 500;
  for (std::uint64_t k = 0; k < n; ++k) f.insert(net::mix64(k));
  const double theory = bloom_theoretical_fpr(4096, 4, n);
  const double measured = bloom_empirical_fpr(f, 50000);
  EXPECT_NEAR(measured, theory, std::max(0.01, theory));
}

TEST(BloomFilter, FillFraction) {
  BloomFilter f{100, 1};
  EXPECT_DOUBLE_EQ(f.fill_fraction(), 0.0);
  f.insert(1);
  EXPECT_NEAR(f.fill_fraction(), 0.01, 1e-9);
}

TEST(BloomFilter, ClearResets) {
  BloomFilter f{128, 2};
  f.insert(42);
  f.clear();
  EXPECT_FALSE(f.contains(42));
  EXPECT_EQ(f.inserted(), 0u);
  EXPECT_DOUBLE_EQ(f.fill_fraction(), 0.0);
}

TEST(BloomFilter, SeedChangesLayout) {
  // Same key, different seeds -> different cells (with overwhelming
  // probability over 4 hashes in 1024 cells).
  bool any_diff = false;
  for (std::uint32_t i = 0; i < 4; ++i) {
    any_diff |=
        bloom_index(12345, i, 1024, 1) != bloom_index(12345, i, 1024, 2);
  }
  EXPECT_TRUE(any_diff);
}

TEST(CountingBloom, SupportsDeletion) {
  CountingBloom f{512, 3};
  f.insert(7);
  f.insert(8);
  EXPECT_TRUE(f.contains(7));
  f.remove(7);
  EXPECT_FALSE(f.contains(7));
  EXPECT_TRUE(f.contains(8));
}

TEST(TheoreticalFpr, MonotoneInLoad) {
  double prev = 0.0;
  for (std::uint64_t n = 100; n <= 2000; n += 100) {
    const double p = bloom_theoretical_fpr(4096, 4, n);
    EXPECT_GT(p, prev);
    prev = p;
  }
  EXPECT_NEAR(bloom_theoretical_fpr(4096, 4, 100000), 1.0, 1e-6);
}

}  // namespace
}  // namespace intox::sketch
