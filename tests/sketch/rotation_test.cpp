// §5-V obfuscation defense: rotating secret seeds neutralize crafted-key
// pollution.
#include "sketch/rotation.hpp"

#include <gtest/gtest.h>

#include "net/hash.hpp"
#include "sketch/attack.hpp"

namespace intox::sketch {
namespace {

TEST(RotatingBloom, BasicMembershipWithinWindow) {
  RotationConfig cfg;
  cfg.rotation_period = 1000;
  RotatingBloom f{cfg};
  for (std::uint64_t k = 1; k <= 100; ++k) f.insert(net::mix64(k));
  for (std::uint64_t k = 1; k <= 100; ++k) {
    EXPECT_TRUE(f.contains(net::mix64(k)));
  }
  EXPECT_EQ(f.rotations(), 0u);
}

TEST(RotatingBloom, RotatesOnSchedule) {
  RotationConfig cfg;
  cfg.rotation_period = 100;
  RotatingBloom f{cfg};
  const auto seed0 = f.current_seed();
  for (std::uint64_t k = 0; k < 250; ++k) f.insert(net::mix64(k));
  EXPECT_EQ(f.rotations(), 2u);
  EXPECT_NE(f.current_seed(), seed0);
}

TEST(RotatingBloom, RetainedKeysSurviveRotation) {
  RotationConfig cfg;
  cfg.rotation_period = 100;
  cfg.retained_keys = 200;
  RotatingBloom f{cfg};
  for (std::uint64_t k = 0; k < 150; ++k) f.insert(net::mix64(k));
  // One rotation happened; the last 150 keys all fit the retention
  // window, so membership persists under the new seed.
  ASSERT_EQ(f.rotations(), 1u);
  for (std::uint64_t k = 50; k < 150; ++k) {
    EXPECT_TRUE(f.contains(net::mix64(k))) << k;
  }
}

TEST(RotatingBloom, CraftedKeysLoseTheirPowerAfterRotation) {
  // Attacker crafts keys against the *initial* seed (she learned it
  // somehow); after one rotation the same keys behave like random ones.
  RotationConfig cfg;
  cfg.cells = 4096;
  cfg.hashes = 4;
  cfg.rotation_period = 1024;
  cfg.retained_keys = 512;
  RotatingBloom defended{cfg};

  const auto crafted = craft_saturating_keys(cfg.cells, cfg.hashes,
                                             defended.current_seed(), 1024);
  // A static filter with the same dimensioning, same crafted keys.
  BloomFilter undefended{cfg.cells, cfg.hashes, defended.current_seed()};
  for (std::uint64_t k : crafted) undefended.insert(k);
  const double fpr_static = bloom_empirical_fpr(undefended, 20000);

  // The rotating filter ingests the same stream; one rotation fires
  // mid-stream, after which the crafted structure is meaningless and the
  // filter only carries the retained window.
  for (std::uint64_t k : crafted) defended.insert(k);
  EXPECT_GE(defended.rotations(), 1u);
  const double fpr_rotated = bloom_empirical_fpr(defended.filter(), 20000);

  EXPECT_GT(fpr_static, 0.5);          // the attack works on a static filter
  EXPECT_LT(fpr_rotated, fpr_static / 3.0);  // and fizzles on the rotating one
}

TEST(RotatingBloom, HonestTrafficUnaffectedByRotation) {
  RotationConfig cfg;
  cfg.rotation_period = 500;
  cfg.retained_keys = 400;
  RotatingBloom f{cfg};
  // Recent membership keeps working across many rotations.
  for (std::uint64_t k = 0; k < 5000; ++k) {
    f.insert(net::mix64(k));
    if (k >= 100) {
      EXPECT_TRUE(f.contains(net::mix64(k - 50))) << k;
    }
  }
  EXPECT_GE(f.rotations(), 9u);
}

}  // namespace
}  // namespace intox::sketch
