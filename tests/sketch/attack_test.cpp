// §3.2 sketch-pollution attacks: crafted keys beat random traffic at
// saturating Bloom filters, and flow spraying destroys FlowRadar batches.
#include <gtest/gtest.h>

#include "net/hash.hpp"
#include "sketch/attack.hpp"

namespace intox::sketch {
namespace {

constexpr std::size_t kCells = 2048;
constexpr std::uint32_t kHashes = 4;
constexpr std::uint32_t kSeed = 5;

std::vector<std::uint64_t> random_keys(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint64_t> keys;
  for (std::size_t i = 0; i < n; ++i) keys.push_back(net::mix64(seed + i));
  return keys;
}

TEST(SaturatingKeys, CoverFasterThanRandom) {
  const std::size_t n = kCells / (2 * kHashes);  // can't saturate, but dent
  const auto crafted = craft_saturating_keys(kCells, kHashes, kSeed, n);
  const auto outcome_crafted =
      run_bloom_pollution(kCells, kHashes, kSeed, {}, crafted);
  const auto outcome_random =
      run_bloom_pollution(kCells, kHashes, kSeed, {}, random_keys(n, 42));
  EXPECT_GT(outcome_crafted.fill_after, outcome_random.fill_after);
  // Greedy cover with a decent search budget stays near-perfect here:
  // every key should claim ~all-fresh cells.
  EXPECT_GT(outcome_crafted.fill_after, 0.45);
}

TEST(SaturatingKeys, DriveFprTowardsOne) {
  // 2m/k crafted keys ~ full coverage -> FPR ~ 1.
  const auto crafted =
      craft_saturating_keys(kCells, kHashes, kSeed, kCells / 2);
  const auto outcome = run_bloom_pollution(kCells, kHashes, kSeed,
                                           random_keys(100, 9), crafted);
  EXPECT_LT(outcome.fpr_before, 0.05);
  EXPECT_GT(outcome.fpr_after, 0.9);
}

TEST(SaturatingKeys, Deterministic) {
  const auto a = craft_saturating_keys(kCells, kHashes, kSeed, 10);
  const auto b = craft_saturating_keys(kCells, kHashes, kSeed, 10);
  EXPECT_EQ(a, b);
}

TEST(FalsePositiveKeys, FoundKeysAreActuallyFalsePositives) {
  const auto cover = random_keys(300, 17);
  const auto fps =
      find_false_positive_keys(kCells, kHashes, kSeed, cover, 5);
  ASSERT_FALSE(fps.empty());
  BloomFilter f{kCells, kHashes, kSeed};
  for (auto k : cover) f.insert(k);
  for (auto k : fps) {
    EXPECT_TRUE(f.contains(k));  // filter says yes...
    EXPECT_EQ(std::find(cover.begin(), cover.end(), k), cover.end());
  }
}

TEST(FlowRadarOverflow, AttackFlipsDecodeFromCompleteToStuck) {
  FlowRadarConfig cfg;
  cfg.table_cells = 512;
  const auto outcome = run_flowradar_overflow(cfg, /*legit=*/200,
                                              /*attack=*/800);
  EXPECT_TRUE(outcome.decode_complete_before);
  EXPECT_FALSE(outcome.decode_complete_after);
  EXPECT_GT(outcome.stuck_cells_after, 0u);
}

TEST(FlowRadarOverflow, NoAttackNoDamage) {
  FlowRadarConfig cfg;
  cfg.table_cells = 512;
  const auto outcome = run_flowradar_overflow(cfg, 200, 0);
  EXPECT_TRUE(outcome.decode_complete_before);
  EXPECT_TRUE(outcome.decode_complete_after);
  EXPECT_EQ(outcome.decoded_flows_after, 200u);
}

TEST(FlowRadarOverflow, DamageScalesWithSprayedFlows) {
  FlowRadarConfig cfg;
  cfg.table_cells = 512;
  std::size_t prev_stuck = 0;
  for (std::size_t attack : {600u, 1200u, 2400u}) {
    const auto outcome = run_flowradar_overflow(cfg, 200, attack);
    EXPECT_GE(outcome.stuck_cells_after, prev_stuck);
    prev_stuck = outcome.stuck_cells_after;
  }
  EXPECT_GT(prev_stuck, 100u);
}

}  // namespace
}  // namespace intox::sketch
