#include "sketch/flowradar.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "net/hash.hpp"
#include "sketch/lossradar.hpp"

namespace intox::sketch {
namespace {

FlowRadarConfig small_config() {
  FlowRadarConfig c;
  c.table_cells = 256;
  return c;
}

TEST(FlowRadar, DecodesWellDimensionedFlowset) {
  FlowRadar radar{small_config()};
  // 256 cells, 3 hashes: ~100 flows decode reliably (IBLT threshold
  // ~1.22x for 3 hashes means capacity ~210).
  std::vector<std::uint64_t> flows;
  for (int i = 0; i < 100; ++i) flows.push_back(net::mix64(i + 1));
  for (auto f : flows) {
    radar.add_packet(f);
    radar.add_packet(f);
  }
  const auto result = radar.decode();
  EXPECT_TRUE(result.complete());
  EXPECT_EQ(result.flows.size(), flows.size());
  for (const auto& df : result.flows) {
    EXPECT_EQ(df.packets, 2u);
    EXPECT_NE(std::find(flows.begin(), flows.end(), df.flow), flows.end());
  }
}

TEST(FlowRadar, CountsDistinctFlowsOnce) {
  FlowRadar radar{small_config()};
  for (int i = 0; i < 50; ++i) radar.add_packet(net::mix64(7));
  EXPECT_EQ(radar.distinct_flows(), 1u);
}

TEST(FlowRadar, OverflowStallsDecoding) {
  FlowRadar radar{small_config()};
  // 3x the decoding threshold: peeling must stall.
  for (int i = 0; i < 700; ++i) radar.add_packet(net::mix64(i + 1));
  const auto result = radar.decode();
  EXPECT_FALSE(result.complete());
  EXPECT_GT(result.stuck_cells, 50u);
}

TEST(FlowRadar, ClearResets) {
  FlowRadar radar{small_config()};
  radar.add_packet(1);
  radar.clear();
  EXPECT_EQ(radar.distinct_flows(), 0u);
  EXPECT_TRUE(radar.decode().complete());
  EXPECT_TRUE(radar.decode().flows.empty());
}

TEST(LossRadar, RecoversExactLosses) {
  LossRadarConfig cfg;
  LossRadar up{cfg}, down{cfg};
  std::vector<std::uint64_t> lost;
  for (std::uint64_t i = 1; i <= 1000; ++i) {
    const std::uint64_t id = net::mix64(i);
    up.add(id);
    if (i % 50 == 0) {
      lost.push_back(id);  // dropped in the segment
    } else {
      down.add(id);
    }
  }
  auto result = up.diff_decode(down);
  ASSERT_TRUE(result.complete());
  ASSERT_EQ(result.lost.size(), lost.size());
  std::sort(result.lost.begin(), result.lost.end());
  std::sort(lost.begin(), lost.end());
  EXPECT_EQ(result.lost, lost);
}

TEST(LossRadar, NoLossDecodesEmpty) {
  LossRadarConfig cfg;
  LossRadar up{cfg}, down{cfg};
  for (std::uint64_t i = 1; i <= 500; ++i) {
    up.add(net::mix64(i));
    down.add(net::mix64(i));
  }
  const auto result = up.diff_decode(down);
  EXPECT_TRUE(result.complete());
  EXPECT_TRUE(result.lost.empty());
}

TEST(LossRadar, MassiveLossOverflowsDigest) {
  LossRadarConfig cfg;  // 256 cells
  LossRadar up{cfg}, down{cfg};
  for (std::uint64_t i = 1; i <= 2000; ++i) up.add(net::mix64(i));
  // Nothing arrives downstream: 2000 "losses" >> digest capacity.
  const auto result = up.diff_decode(down);
  EXPECT_FALSE(result.complete());
}

}  // namespace
}  // namespace intox::sketch
