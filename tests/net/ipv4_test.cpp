#include "net/ipv4.hpp"

#include <gtest/gtest.h>

namespace intox::net {
namespace {

TEST(Ipv4Addr, OctetConstructionMatchesValue) {
  Ipv4Addr a{192, 168, 1, 20};
  EXPECT_EQ(a.value(), 0xc0a80114u);
  EXPECT_EQ(a.octet(0), 192);
  EXPECT_EQ(a.octet(1), 168);
  EXPECT_EQ(a.octet(2), 1);
  EXPECT_EQ(a.octet(3), 20);
}

TEST(Ipv4Addr, RoundTripFormatParse) {
  Ipv4Addr a{10, 0, 255, 1};
  auto parsed = parse_ipv4(to_string(a));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, a);
}

TEST(Ipv4Addr, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_ipv4("").has_value());
  EXPECT_FALSE(parse_ipv4("1.2.3").has_value());
  EXPECT_FALSE(parse_ipv4("1.2.3.4.5").has_value());
  EXPECT_FALSE(parse_ipv4("256.0.0.1").has_value());
  EXPECT_FALSE(parse_ipv4("1.2.3.x").has_value());
  EXPECT_FALSE(parse_ipv4("1..2.3").has_value());
  EXPECT_FALSE(parse_ipv4("-1.2.3.4").has_value());
}

TEST(Ipv4Addr, Ordering) {
  EXPECT_LT(Ipv4Addr(1, 0, 0, 0), Ipv4Addr(2, 0, 0, 0));
  EXPECT_EQ(Ipv4Addr(1, 2, 3, 4), Ipv4Addr(1, 2, 3, 4));
}

TEST(Prefix, CanonicalizesHostBits) {
  Prefix p{Ipv4Addr{10, 1, 2, 3}, 8};
  EXPECT_EQ(p.addr(), Ipv4Addr(10, 0, 0, 0));
  EXPECT_EQ(p.length(), 8);
}

TEST(Prefix, Contains) {
  Prefix p{Ipv4Addr{10, 0, 0, 0}, 8};
  EXPECT_TRUE(p.contains(Ipv4Addr(10, 255, 0, 1)));
  EXPECT_FALSE(p.contains(Ipv4Addr(11, 0, 0, 1)));
}

TEST(Prefix, ZeroLengthContainsEverything) {
  Prefix p{Ipv4Addr{1, 2, 3, 4}, 0};
  EXPECT_TRUE(p.contains(Ipv4Addr(0, 0, 0, 0)));
  EXPECT_TRUE(p.contains(Ipv4Addr(255, 255, 255, 255)));
}

TEST(Prefix, SlashThirtyTwoContainsOnlyItself) {
  Prefix p{Ipv4Addr{1, 2, 3, 4}, 32};
  EXPECT_TRUE(p.contains(Ipv4Addr(1, 2, 3, 4)));
  EXPECT_FALSE(p.contains(Ipv4Addr(1, 2, 3, 5)));
}

TEST(Prefix, Covers) {
  Prefix wide{Ipv4Addr{10, 0, 0, 0}, 8};
  Prefix narrow{Ipv4Addr{10, 1, 0, 0}, 16};
  EXPECT_TRUE(wide.covers(narrow));
  EXPECT_FALSE(narrow.covers(wide));
  EXPECT_TRUE(wide.covers(wide));
}

TEST(Prefix, RoundTripFormatParse) {
  Prefix p{Ipv4Addr{172, 16, 0, 0}, 12};
  auto parsed = parse_prefix(to_string(p));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, p);
}

TEST(Prefix, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_prefix("10.0.0.0").has_value());
  EXPECT_FALSE(parse_prefix("10.0.0.0/33").has_value());
  EXPECT_FALSE(parse_prefix("10.0.0.0/-1").has_value());
  EXPECT_FALSE(parse_prefix("10.0.0/8").has_value());
  EXPECT_FALSE(parse_prefix("10.0.0.0/8x").has_value());
}

}  // namespace
}  // namespace intox::net
