#include "net/lpm.hpp"

#include <gtest/gtest.h>

namespace intox::net {
namespace {

TEST(LpmTable, LongestMatchWins) {
  LpmTable<int> t;
  t.insert(Prefix{Ipv4Addr{10, 0, 0, 0}, 8}, 1);
  t.insert(Prefix{Ipv4Addr{10, 1, 0, 0}, 16}, 2);
  t.insert(Prefix{Ipv4Addr{10, 1, 2, 0}, 24}, 3);

  EXPECT_EQ(t.lookup(Ipv4Addr(10, 1, 2, 3))->value, 3);
  EXPECT_EQ(t.lookup(Ipv4Addr(10, 1, 9, 9))->value, 2);
  EXPECT_EQ(t.lookup(Ipv4Addr(10, 9, 9, 9))->value, 1);
  EXPECT_FALSE(t.lookup(Ipv4Addr(11, 0, 0, 1)).has_value());
}

TEST(LpmTable, DefaultRoute) {
  LpmTable<int> t;
  t.insert(Prefix{Ipv4Addr{0, 0, 0, 0}, 0}, 99);
  EXPECT_EQ(t.lookup(Ipv4Addr(1, 2, 3, 4))->value, 99);
  EXPECT_EQ(t.lookup(Ipv4Addr(255, 255, 255, 255))->value, 99);
}

TEST(LpmTable, HostRoute) {
  LpmTable<int> t;
  t.insert(Prefix{Ipv4Addr{10, 0, 0, 5}, 32}, 7);
  EXPECT_EQ(t.lookup(Ipv4Addr(10, 0, 0, 5))->value, 7);
  EXPECT_FALSE(t.lookup(Ipv4Addr(10, 0, 0, 6)).has_value());
}

TEST(LpmTable, InsertReplaces) {
  LpmTable<int> t;
  const Prefix p{Ipv4Addr{10, 0, 0, 0}, 8};
  t.insert(p, 1);
  t.insert(p, 2);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.lookup(Ipv4Addr(10, 0, 0, 1))->value, 2);
}

TEST(LpmTable, EraseFallsBackToShorterPrefix) {
  LpmTable<int> t;
  t.insert(Prefix{Ipv4Addr{10, 0, 0, 0}, 8}, 1);
  t.insert(Prefix{Ipv4Addr{10, 1, 0, 0}, 16}, 2);
  EXPECT_TRUE(t.erase(Prefix{Ipv4Addr{10, 1, 0, 0}, 16}));
  EXPECT_EQ(t.lookup(Ipv4Addr(10, 1, 0, 1))->value, 1);
  EXPECT_FALSE(t.erase(Prefix{Ipv4Addr{10, 1, 0, 0}, 16}));
  EXPECT_EQ(t.size(), 1u);
}

TEST(LpmTable, MatchReportsPrefix) {
  LpmTable<int> t;
  t.insert(Prefix{Ipv4Addr{10, 0, 0, 0}, 8}, 1);
  auto m = t.lookup(Ipv4Addr(10, 3, 4, 5));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->prefix, (Prefix{Ipv4Addr{10, 0, 0, 0}, 8}));
}

TEST(LpmTable, EntriesEnumeration) {
  LpmTable<int> t;
  t.insert(Prefix{Ipv4Addr{10, 0, 0, 0}, 8}, 1);
  t.insert(Prefix{Ipv4Addr{192, 168, 0, 0}, 16}, 2);
  EXPECT_EQ(t.entries().size(), 2u);
}

TEST(LpmTable, FindExact) {
  LpmTable<int> t;
  t.insert(Prefix{Ipv4Addr{10, 0, 0, 0}, 8}, 1);
  ASSERT_NE(t.find(Prefix{Ipv4Addr{10, 0, 0, 0}, 8}), nullptr);
  EXPECT_EQ(*t.find(Prefix{Ipv4Addr{10, 0, 0, 0}, 8}), 1);
  EXPECT_EQ(t.find(Prefix{Ipv4Addr{10, 0, 0, 0}, 9}), nullptr);
}

}  // namespace
}  // namespace intox::net
