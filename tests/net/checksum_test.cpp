// RFC 1071 checksum: unit vectors plus the large-span regression.
//
// The word-at-a-time fast path used to accumulate into 32 bits without
// folding; with 0xffff per 16-bit word the accumulator wraps once a span
// (plus any chained `initial`) crosses ~128 KiB, silently corrupting the
// checksum. These tests pin the fix against the byte-at-a-time
// fold-every-add reference oracle.
#include "net/checksum.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "validate/oracles.hpp"

namespace intox::net {
namespace {

std::vector<std::byte> bytes(std::initializer_list<int> xs) {
  std::vector<std::byte> out;
  for (int x : xs) out.push_back(static_cast<std::byte>(x));
  return out;
}

TEST(InternetChecksum, Rfc1071WorkedExample) {
  // The example from RFC 1071 §3: words 0x0001 0xf203 0xf4f5 0xf6f7
  // sum (with end-around carries) to 0xddf2; the checksum is ~0xddf2.
  const auto data = bytes({0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7});
  EXPECT_EQ(internet_checksum(data), 0xffff - 0xddf2);
  EXPECT_EQ(internet_checksum(data),
            validate::reference_internet_checksum(data));
}

TEST(InternetChecksum, OddLengthPadsWithZero) {
  const auto data = bytes({0xab, 0xcd, 0xef});
  EXPECT_EQ(internet_checksum(data),
            validate::reference_internet_checksum(data));
}

TEST(InternetChecksum, VerifiesToZeroWithChecksumIncluded) {
  auto data = bytes({0x45, 0x00, 0x00, 0x1c, 0x00, 0x00, 0x00, 0x00,
                     0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01,
                     0xc0, 0xa8, 0x00, 0xc7});
  const std::uint16_t csum = internet_checksum(data);
  data[10] = static_cast<std::byte>(csum >> 8);
  data[11] = static_cast<std::byte>(csum & 0xff);
  EXPECT_EQ(internet_checksum(data), 0);
}

TEST(ChecksumPartial, LargeSpanDoesNotWrapAccumulator) {
  // Regression for the 32-bit accumulator overflow: 512 KiB of 0xff
  // bytes is 256 Ki words of 0xffff — an unfolded 32-bit sum would need
  // 34 bits. The fixed fast path must agree with the fold-every-add
  // reference exactly.
  const std::vector<std::byte> big(512 * 1024, std::byte{0xff});
  const std::uint32_t fast = checksum_partial(big);
  const std::uint32_t ref = validate::reference_checksum_partial(big);
  // Both are valid partial sums; they must FOLD to the same 16 bits.
  auto fold = [](std::uint32_t s) {
    while (s >> 16) s = (s & 0xffffu) + (s >> 16);
    return s;
  };
  EXPECT_EQ(fold(fast), fold(ref));
  EXPECT_EQ(internet_checksum(big), validate::reference_internet_checksum(big));
}

TEST(ChecksumPartial, LargeSpanWithChainedInitialAgreesWithReference) {
  std::vector<std::byte> big(300 * 1024 + 1);  // odd length too
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::byte>((i * 31 + 7) & 0xff);
  }
  const std::uint32_t initial = 0xfffe1234u;  // a large unfolded carry-in
  EXPECT_EQ(internet_checksum(big, initial),
            validate::reference_internet_checksum(big, initial));
}

TEST(ChecksumPartial, ChainingSplitSpansMatchesWholeSpan) {
  std::vector<std::byte> data(200 * 1024);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>((i * 131) & 0xff);
  }
  const std::span<const std::byte> whole{data};
  // Split on an even boundary so word alignment is preserved.
  const auto first = whole.subspan(0, 100 * 1024);
  const auto second = whole.subspan(100 * 1024);
  const std::uint32_t partial = checksum_partial(first);
  EXPECT_EQ(internet_checksum(second, partial), internet_checksum(whole));
}

}  // namespace
}  // namespace intox::net
