#include "net/packet.hpp"

#include <gtest/gtest.h>

#include "net/checksum.hpp"

namespace intox::net {
namespace {

Packet make_tcp_packet() {
  Packet p;
  p.src = Ipv4Addr{10, 0, 0, 1};
  p.dst = Ipv4Addr{10, 0, 0, 2};
  p.ttl = 61;
  TcpHeader t;
  t.src_port = 43210;
  t.dst_port = 443;
  t.seq = 0xdeadbeef;
  t.ack = 0x1234;
  t.syn = true;
  t.ack_flag = true;
  t.window = 29200;
  p.l4 = t;
  p.payload_bytes = 100;
  return p;
}

TEST(FiveTuple, ReversedSwapsEndpoints) {
  FiveTuple t{Ipv4Addr{1, 1, 1, 1}, Ipv4Addr{2, 2, 2, 2}, 1000, 80,
              IpProto::kTcp};
  const FiveTuple r = t.reversed();
  EXPECT_EQ(r.src, t.dst);
  EXPECT_EQ(r.dst, t.src);
  EXPECT_EQ(r.src_port, t.dst_port);
  EXPECT_EQ(r.dst_port, t.src_port);
  EXPECT_EQ(r.reversed(), t);
}

TEST(FlowHash, StableAndSeedable) {
  FiveTuple t{Ipv4Addr{1, 1, 1, 1}, Ipv4Addr{2, 2, 2, 2}, 1000, 80,
              IpProto::kTcp};
  EXPECT_EQ(flow_hash(t), flow_hash(t));
  EXPECT_NE(flow_hash(t, 0), flow_hash(t, 7));
  FiveTuple u = t;
  u.src_port = 1001;
  EXPECT_NE(flow_hash(t), flow_hash(u));
}

TEST(Packet, FiveTupleExtraction) {
  Packet p = make_tcp_packet();
  FiveTuple t = p.five_tuple();
  EXPECT_EQ(t.src, p.src);
  EXPECT_EQ(t.src_port, 43210);
  EXPECT_EQ(t.dst_port, 443);
  EXPECT_EQ(t.proto, IpProto::kTcp);
}

TEST(Packet, SizeAccounting) {
  Packet p = make_tcp_packet();
  EXPECT_EQ(p.size_bytes(), 20u + 20u + 100u);
  Packet u;
  u.l4 = UdpHeader{53, 53};
  u.payload_bytes = 10;
  EXPECT_EQ(u.size_bytes(), 20u + 8u + 10u);
}

TEST(PacketWire, TcpRoundTrip) {
  Packet p = make_tcp_packet();
  auto wire = serialize(p);
  EXPECT_EQ(wire.size(), p.size_bytes());
  auto back = parse(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->src, p.src);
  EXPECT_EQ(back->dst, p.dst);
  EXPECT_EQ(back->ttl, p.ttl);
  ASSERT_NE(back->tcp(), nullptr);
  EXPECT_EQ(back->tcp()->seq, 0xdeadbeefu);
  EXPECT_TRUE(back->tcp()->syn);
  EXPECT_TRUE(back->tcp()->ack_flag);
  EXPECT_FALSE(back->tcp()->fin);
  EXPECT_EQ(back->payload_bytes, 100u);
}

TEST(PacketWire, UdpRoundTrip) {
  Packet p;
  p.src = Ipv4Addr{1, 2, 3, 4};
  p.dst = Ipv4Addr{5, 6, 7, 8};
  p.l4 = UdpHeader{33434, 53};
  p.payload_bytes = 32;
  auto back = parse(serialize(p));
  ASSERT_TRUE(back.has_value());
  ASSERT_NE(back->udp(), nullptr);
  EXPECT_EQ(back->udp()->src_port, 33434);
  EXPECT_EQ(back->payload_bytes, 32u);
}

TEST(PacketWire, IcmpRoundTrip) {
  Packet p;
  p.src = Ipv4Addr{9, 9, 9, 9};
  p.dst = Ipv4Addr{8, 8, 8, 8};
  IcmpHeader ic;
  ic.type = IcmpType::kTimeExceeded;
  ic.code = 0;
  ic.id = 777;
  ic.seq = 3;
  p.l4 = ic;
  auto back = parse(serialize(p));
  ASSERT_TRUE(back.has_value());
  ASSERT_NE(back->icmp(), nullptr);
  EXPECT_EQ(back->icmp()->type, IcmpType::kTimeExceeded);
  EXPECT_EQ(back->icmp()->id, 777);
}

TEST(PacketWire, CorruptionDetected) {
  auto wire = serialize(make_tcp_packet());
  wire[15] ^= std::byte{0x01};  // flip a bit in the source address
  EXPECT_FALSE(parse(wire).has_value());
}

TEST(PacketWire, TruncationDetected) {
  auto wire = serialize(make_tcp_packet());
  wire.resize(wire.size() / 2);
  EXPECT_FALSE(parse(wire).has_value());
}

TEST(PacketWire, L4CorruptionDetected) {
  auto wire = serialize(make_tcp_packet());
  wire[24] ^= std::byte{0x40};  // flip a bit in the TCP sequence number
  EXPECT_FALSE(parse(wire).has_value());
}

TEST(Checksum, Rfc1071Example) {
  // Example bytes from RFC 1071 §3: 00 01 f2 03 f4 f5 f6 f7.
  const std::array<std::byte, 8> data{
      std::byte{0x00}, std::byte{0x01}, std::byte{0xf2}, std::byte{0x03},
      std::byte{0xf4}, std::byte{0xf5}, std::byte{0xf6}, std::byte{0xf7}};
  // Folded one's-complement sum of the words is 0xddf2, checksum is its
  // complement.
  EXPECT_EQ(internet_checksum(data), static_cast<std::uint16_t>(~0xddf2));
}

TEST(Checksum, OddLengthPadsWithZero) {
  const std::array<std::byte, 3> data{std::byte{0x01}, std::byte{0x02},
                                      std::byte{0x03}};
  // Words: 0x0102, 0x0300 -> sum 0x0402.
  EXPECT_EQ(internet_checksum(data), static_cast<std::uint16_t>(~0x0402));
}

TEST(Packet, ToStringMentionsFlags) {
  const std::string s = to_string(make_tcp_packet());
  EXPECT_NE(s.find("SYN"), std::string::npos);
  EXPECT_NE(s.find("10.0.0.1"), std::string::npos);
}

}  // namespace
}  // namespace intox::net
