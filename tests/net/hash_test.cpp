#include "net/hash.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string_view>

namespace intox::net {
namespace {

std::span<const std::byte> bytes_of(std::string_view s) {
  return std::as_bytes(std::span{s.data(), s.size()});
}

TEST(Crc32, KnownVectors) {
  // Standard CRC-32 (IEEE) check value for "123456789".
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xcbf43926u);
  EXPECT_EQ(crc32(bytes_of("")), 0x00000000u);
  EXPECT_EQ(crc32(bytes_of("a")), 0xe8b7be43u);
}

TEST(Crc32, SeedChangesOutput) {
  const auto data = bytes_of("hello world");
  EXPECT_NE(crc32(data, 0), crc32(data, 1));
}

TEST(Crc32, Deterministic) {
  const auto data = bytes_of("determinism");
  EXPECT_EQ(crc32(data, 42), crc32(data, 42));
}

TEST(Fnv1a64, DistinctInputsDistinctHashes) {
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(fnv1a64_of(i));
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Fnv1a64, SeedProvidesIndependentFunctions) {
  const auto data = bytes_of("flow");
  EXPECT_NE(fnv1a64(data, 1), fnv1a64(data, 2));
}

TEST(Mix64, BijectivePrefixHasNoEarlyCollisions) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) seen.insert(mix64(i));
  EXPECT_EQ(seen.size(), 10000u);
}

}  // namespace
}  // namespace intox::net
