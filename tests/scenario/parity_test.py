#!/usr/bin/env python3
"""Golden-stdout parity between a legacy bench/example binary and the
unified driver.

Usage:
  parity_test.py INTOX LEGACY SCENARIO [legacy args...] -- [driver args...]

Runs `LEGACY legacy-args...` and `INTOX run SCENARIO driver-args...` and
requires byte-identical stdout and equal exit codes. Stderr is free to
differ (perf records carry wall-clock timings).
"""

import subprocess
import sys


def run(cmd):
    proc = subprocess.run(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL
    )
    return proc.returncode, proc.stdout


def main():
    if len(sys.argv) < 4:
        sys.exit(f"usage: {sys.argv[0]} INTOX LEGACY SCENARIO "
                 "[legacy args...] -- [driver args...]")
    intox, legacy, scenario = sys.argv[1:4]
    rest = sys.argv[4:]
    if "--" in rest:
        split = rest.index("--")
        legacy_args, driver_args = rest[:split], rest[split + 1:]
    else:
        legacy_args, driver_args = rest, []

    legacy_rc, legacy_out = run([legacy] + legacy_args)
    driver_rc, driver_out = run([intox, "run", scenario] + driver_args)

    if legacy_rc != driver_rc:
        sys.exit(f"exit codes differ: {legacy} -> {legacy_rc}, "
                 f"intox run {scenario} -> {driver_rc}")
    if legacy_out != driver_out:
        for lineno, (a, b) in enumerate(
            zip(legacy_out.splitlines(), driver_out.splitlines()), 1
        ):
            if a != b:
                sys.exit(
                    f"stdout diverges at line {lineno}:\n"
                    f"  legacy: {a!r}\n  driver: {b!r}"
                )
        sys.exit(f"stdout lengths differ: legacy {len(legacy_out)} bytes, "
                 f"driver {len(driver_out)} bytes")
    print(f"parity ok: {scenario}, {len(driver_out)} bytes, "
          f"exit {driver_rc}")


if __name__ == "__main__":
    main()
