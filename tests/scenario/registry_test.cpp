// The scenario registry: every bench family is represented, names are
// unique and sorted, knob declarations are well-formed, and duplicate
// registration aborts loudly.
#include "scenario/registry.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace intox::scenario {
namespace {

TEST(Registry, EnumeratesAtLeastTwelveScenarios) {
  EXPECT_GE(Registry::instance().all().size(), 12u);
}

TEST(Registry, CoversEveryBenchFamily) {
  std::set<std::string> families;
  for (const Scenario* sc : Registry::instance().all()) {
    families.insert(sc->family);
  }
  for (const char* family :
       {"FIG2", "BLINK-TR", "BLINK-E2E", "PCC-OSC", "PCC-FLEET",
        "PYTH-QOE", "PYTH-CDN", "SKETCH", "SPPIFO", "NETHIDE", "DEFENSE",
        "EXT"}) {
    EXPECT_TRUE(families.count(family)) << "missing family " << family;
  }
}

TEST(Registry, CoversTheExampleWalkthroughs) {
  for (const char* name :
       {"quickstart", "blink.hijack", "pcc.mitm", "pytheas.streaming",
        "nethide.traceroute", "attack.synthesis", "egress.steering"}) {
    EXPECT_NE(Registry::instance().find(name), nullptr)
        << "missing scenario " << name;
  }
}

TEST(Registry, AllIsSortedAndUnique) {
  const auto all = Registry::instance().all();
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1]->name, all[i]->name);
  }
}

TEST(Registry, FindReturnsNullForUnknownName) {
  EXPECT_EQ(Registry::instance().find("no.such.scenario"), nullptr);
}

TEST(Registry, EveryScenarioIsFullyDeclared) {
  for (const Scenario* sc : Registry::instance().all()) {
    EXPECT_FALSE(sc->name.empty());
    EXPECT_FALSE(sc->family.empty());
    EXPECT_FALSE(sc->description.empty()) << sc->name;
    EXPECT_NE(sc->run, nullptr) << sc->name;
  }
}

TEST(Registry, KnobDeclarationsAreWellFormed) {
  for (const Scenario* sc : Registry::instance().all()) {
    if (sc->declare_knobs == nullptr) continue;
    KnobSet knobs;
    sc->declare_knobs(knobs);
    for (const Knob& k : knobs.all()) {
      EXPECT_FALSE(k.name.empty()) << sc->name;
      EXPECT_FALSE(k.help.empty()) << sc->name << "." << k.name;
      if (k.has_range && k.kind == KnobKind::kU64) {
        const double def = static_cast<double>(k.u);
        EXPECT_GE(def, k.min_value) << sc->name << "." << k.name;
        EXPECT_LE(def, k.max_value) << sc->name << "." << k.name;
      }
      if (k.has_range && k.kind == KnobKind::kDouble) {
        EXPECT_GE(k.d, k.min_value) << sc->name << "." << k.name;
        EXPECT_LE(k.d, k.max_value) << sc->name << "." << k.name;
      }
    }
  }
}

using RegistryDeathTest = Registry;

TEST(RegistryDeathTest, DuplicateRegistrationAborts) {
  Scenario dup;
  dup.name = "blink.fig2";  // already registered
  dup.family = "FIG2";
  dup.description = "duplicate";
  EXPECT_DEATH(Registry::instance().add(dup),
               "duplicate scenario registration 'blink.fig2'");
}

}  // namespace
}  // namespace intox::scenario
