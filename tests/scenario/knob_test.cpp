// KnobSet: strict typed parsing with one-line diagnostics — the same
// reject-don't-default contract obs::parse_threads_arg established.
#include "scenario/knob.hpp"

#include <gtest/gtest.h>

namespace intox::scenario {
namespace {

KnobSet sample() {
  KnobSet knobs;
  knobs.declare_bool("attack", false, "enable the attack");
  knobs.declare_u64("trials", 8, "trial count", 1, 100);
  knobs.declare_double("floor", 0.5, "accuracy floor", 0.0, 1.0);
  knobs.declare_string("label", "clean", "free-form label");
  return knobs;
}

TEST(KnobSet, DefaultsAreVisibleThroughTypedAccessors) {
  const KnobSet knobs = sample();
  EXPECT_FALSE(knobs.b("attack"));
  EXPECT_EQ(knobs.u("trials"), 8u);
  EXPECT_DOUBLE_EQ(knobs.d("floor"), 0.5);
  EXPECT_EQ(knobs.s("label"), "clean");
}

TEST(KnobSet, SetParsesEveryKind) {
  KnobSet knobs = sample();
  EXPECT_EQ(knobs.set("attack", "true"), "");
  EXPECT_EQ(knobs.set("trials", "42"), "");
  EXPECT_EQ(knobs.set("floor", "0.75"), "");
  EXPECT_EQ(knobs.set("label", "poisoned"), "");
  EXPECT_TRUE(knobs.b("attack"));
  EXPECT_EQ(knobs.u("trials"), 42u);
  EXPECT_DOUBLE_EQ(knobs.d("floor"), 0.75);
  EXPECT_EQ(knobs.s("label"), "poisoned");
}

TEST(KnobSet, BoolAcceptsZeroOne) {
  KnobSet knobs = sample();
  EXPECT_EQ(knobs.set("attack", "1"), "");
  EXPECT_TRUE(knobs.b("attack"));
  EXPECT_EQ(knobs.set("attack", "0"), "");
  EXPECT_FALSE(knobs.b("attack"));
}

TEST(KnobSet, UnknownKeyNamesTheDeclaredKnobs) {
  KnobSet knobs = sample();
  const std::string err = knobs.set("bogus", "1");
  EXPECT_NE(err.find("unknown knob 'bogus'"), std::string::npos) << err;
  EXPECT_NE(err.find("trials"), std::string::npos) << err;
}

TEST(KnobSet, MalformedValuesAreRejected) {
  KnobSet knobs = sample();
  EXPECT_NE(knobs.set("attack", "yes"), "");
  EXPECT_NE(knobs.set("trials", "abc"), "");
  EXPECT_NE(knobs.set("trials", "-3"), "");
  EXPECT_NE(knobs.set("trials", "12x"), "");
  EXPECT_NE(knobs.set("floor", "fast"), "");
  // The stored values stay untouched after a rejected set.
  EXPECT_EQ(knobs.u("trials"), 8u);
  EXPECT_DOUBLE_EQ(knobs.d("floor"), 0.5);
}

TEST(KnobSet, RangeViolationsAreRejected) {
  KnobSet knobs = sample();
  EXPECT_NE(knobs.set("trials", "0"), "");
  EXPECT_NE(knobs.set("trials", "101"), "");
  EXPECT_NE(knobs.set("floor", "1.5"), "");
  EXPECT_EQ(knobs.set("trials", "1"), "");
  EXPECT_EQ(knobs.set("trials", "100"), "");
}

TEST(KnobSet, WrongKindAccessIsAProgrammingError) {
  const KnobSet knobs = sample();
  EXPECT_THROW((void)knobs.u("attack"), std::logic_error);
  EXPECT_THROW((void)knobs.b("trials"), std::logic_error);
  EXPECT_THROW((void)knobs.u("nope"), std::logic_error);
}

TEST(KnobSet, FindExposesDeclaredMetadata) {
  const KnobSet knobs = sample();
  const Knob* k = knobs.find("trials");
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->kind, KnobKind::kU64);
  EXPECT_TRUE(k->has_range);
  EXPECT_EQ(k->default_text, "8");
  EXPECT_EQ(knobs.find("nope"), nullptr);
}

}  // namespace
}  // namespace intox::scenario
