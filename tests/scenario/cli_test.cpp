// The intox driver CLI contract: every malformed input dies with one
// one-line stderr diagnostic and exit status 2 — never a silent default.
// Each death test forks, so driver_main's printf output stays out of the
// test's own stdout.
#include "scenario/driver.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <initializer_list>
#include <vector>

#include "scenario/shim.hpp"

namespace intox::scenario {
namespace {

int run(std::initializer_list<const char*> args) {
  std::vector<char*> argv;
  for (const char* a : args) argv.push_back(const_cast<char*>(a));
  argv.push_back(nullptr);
  return driver_main(static_cast<int>(args.size()), argv.data());
}

int shim(const char* scenario, std::initializer_list<const char*> args,
         const LegacySpec& spec) {
  std::vector<char*> argv;
  for (const char* a : args) argv.push_back(const_cast<char*>(a));
  argv.push_back(nullptr);
  return run_legacy_shim(scenario, static_cast<int>(args.size()),
                         argv.data(), spec);
}

using CliDeathTest = ::testing::Test;

TEST(CliDeathTest, UnknownScenarioExitsTwo) {
  EXPECT_EXIT(std::exit(run({"intox", "run", "no.such"})),
              ::testing::ExitedWithCode(2),
              "intox: unknown scenario 'no.such'");
}

TEST(CliDeathTest, UnknownCommandExitsTwo) {
  EXPECT_EXIT(std::exit(run({"intox", "frobnicate"})),
              ::testing::ExitedWithCode(2),
              "intox: unknown command 'frobnicate'");
}

TEST(CliDeathTest, NoArgumentsPrintsUsageAndExitsTwo) {
  EXPECT_EXIT(std::exit(run({"intox"})), ::testing::ExitedWithCode(2),
              "usage: intox");
}

TEST(CliDeathTest, MalformedSetExitsTwo) {
  EXPECT_EXIT(
      std::exit(run({"intox", "run", "blink.fig2", "--set", "runs"})),
      ::testing::ExitedWithCode(2), "intox: --set expects key=value");
}

TEST(CliDeathTest, DanglingSetExitsTwo) {
  EXPECT_EXIT(std::exit(run({"intox", "run", "blink.fig2", "--set"})),
              ::testing::ExitedWithCode(2),
              "intox: --set requires key=value");
}

TEST(CliDeathTest, UnknownKnobExitsTwo) {
  EXPECT_EXIT(
      std::exit(run({"intox", "run", "blink.fig2", "--set", "nope=3"})),
      ::testing::ExitedWithCode(2), "intox: unknown knob 'nope'");
}

TEST(CliDeathTest, NonNumericKnobValueExitsTwo) {
  EXPECT_EXIT(
      std::exit(run({"intox", "run", "blink.fig2", "--set", "runs=abc"})),
      ::testing::ExitedWithCode(2),
      "intox: knob 'runs' expects an unsigned integer");
}

TEST(CliDeathTest, OutOfRangeKnobExitsTwo) {
  EXPECT_EXIT(
      std::exit(run({"intox", "run", "blink.fig2", "--set", "runs=0"})),
      ::testing::ExitedWithCode(2), "intox: knob 'runs' out of range");
}

TEST(CliDeathTest, MalformedSweepExitsTwo) {
  EXPECT_EXIT(std::exit(run({"intox", "run", "blink.fig2", "--sweep",
                             "runs=1:4"})),
              ::testing::ExitedWithCode(2),
              "intox: --sweep expects key=a:b:step");
}

TEST(CliDeathTest, NonNumericSweepExitsTwo) {
  EXPECT_EXIT(std::exit(run({"intox", "run", "blink.fig2", "--sweep",
                             "runs=1:x:1"})),
              ::testing::ExitedWithCode(2), "is not a number");
}

TEST(CliDeathTest, EmptySweepRangeExitsTwo) {
  EXPECT_EXIT(std::exit(run({"intox", "run", "blink.fig2", "--sweep",
                             "runs=4:1:1"})),
              ::testing::ExitedWithCode(2), "intox: --sweep: empty range");
}

TEST(CliDeathTest, SweepOnBoolKnobExitsTwo) {
  EXPECT_EXIT(std::exit(run({"intox", "run", "pcc.mitm", "--sweep",
                             "attack=0:1:1"})),
              ::testing::ExitedWithCode(2),
              "only u64/double knobs sweep");
}

TEST(CliDeathTest, UnknownArgumentExitsTwo) {
  EXPECT_EXIT(std::exit(run({"intox", "run", "blink.fig2", "--bogus"})),
              ::testing::ExitedWithCode(2),
              "intox: unknown argument '--bogus'");
}

TEST(CliDeathTest, MissingConfigFileExitsTwo) {
  EXPECT_EXIT(std::exit(run({"intox", "run", "blink.fig2", "--config",
                             "/no/such/file.cfg"})),
              ::testing::ExitedWithCode(2),
              "intox: --config: cannot open");
}

TEST(CliDeathTest, MalformedThreadsExitsTwo) {
  // --threads is validated by the observability session from the
  // original argv, strictly, like every other flag.
  EXPECT_EXIT(std::exit(run({"intox", "run", "blink.fig2", "--threads",
                             "lots"})),
              ::testing::ExitedWithCode(2), "--threads expects");
}

TEST(CliDeathTest, ValidateUnknownScenarioExitsTwo) {
  EXPECT_EXIT(std::exit(run({"intox", "validate", "no.such"})),
              ::testing::ExitedWithCode(2),
              "intox: unknown scenario 'no.such'");
}

TEST(CliDeathTest, KnobsUnknownScenarioExitsTwo) {
  EXPECT_EXIT(std::exit(run({"intox", "knobs", "no.such"})),
              ::testing::ExitedWithCode(2),
              "intox: unknown scenario 'no.such'");
}

TEST(CliDeathTest, ShimRejectsUnknownArgument) {
  LegacySpec spec;
  spec.value_flags = {{"--runs", "runs"}};
  EXPECT_EXIT(
      std::exit(shim("blink.fig2", {"bench_blink_fig2", "--frobs", "4"},
                     spec)),
      ::testing::ExitedWithCode(2), "intox: unknown argument '--frobs'");
}

TEST(CliDeathTest, ShimRejectsDanglingValueFlag) {
  LegacySpec spec;
  spec.value_flags = {{"--runs", "runs"}};
  EXPECT_EXIT(
      std::exit(shim("blink.fig2", {"bench_blink_fig2", "--runs"}, spec)),
      ::testing::ExitedWithCode(2), "intox: --runs requires a value");
}

TEST(CliDeathTest, ShimForwardsMalformedValueToKnobParser) {
  LegacySpec spec;
  spec.value_flags = {{"--runs", "runs"}};
  EXPECT_EXIT(std::exit(shim("blink.fig2",
                             {"bench_blink_fig2", "--runs", "many"},
                             spec)),
              ::testing::ExitedWithCode(2),
              "intox: knob 'runs' expects an unsigned integer");
}

TEST(CliDeathTest, ShimRejectsSecondPositional) {
  LegacySpec spec;
  spec.positional_knob = "bots";
  EXPECT_EXIT(
      std::exit(shim("blink.hijack", {"blink_hijack", "50", "60"}, spec)),
      ::testing::ExitedWithCode(2), "intox: unknown argument '60'");
}

// --set and --sweep fighting over one knob used to resolve silently in
// favor of the sweep; now it is a config error, in either flag order.
TEST(CliDeathTest, SetThenSweepSameKnobExitsTwo) {
  EXPECT_EXIT(std::exit(run({"intox", "run", "blink.fig2", "--set",
                             "runs=4", "--sweep", "runs=1:2:1"})),
              ::testing::ExitedWithCode(2),
              "intox: --set and --sweep both name knob 'runs'");
}

TEST(CliDeathTest, SweepThenSetSameKnobExitsTwo) {
  EXPECT_EXIT(std::exit(run({"intox", "run", "blink.fig2", "--sweep",
                             "runs=1:2:1", "--set", "runs=4"})),
              ::testing::ExitedWithCode(2),
              "intox: --set and --sweep both name knob 'runs'");
}

TEST(CliDeathTest, DuplicateSweepKnobExitsTwo) {
  EXPECT_EXIT(std::exit(run({"intox", "run", "blink.fig2", "--sweep",
                             "runs=1:2:1", "--sweep", "runs=3:4:1"})),
              ::testing::ExitedWithCode(2),
              "intox: --sweep: knob 'runs' swept twice");
}

TEST(CliDeathTest, PointOutOfRangeExitsTwo) {
  EXPECT_EXIT(std::exit(run({"intox", "run", "blink.fig2", "--sweep",
                             "runs=1:4:1", "--point", "4"})),
              ::testing::ExitedWithCode(2),
              "intox: --point 4 out of range \\(sweep has 4 points\\)");
}

TEST(CliDeathTest, PointWithoutSweepOnlyAllowsZero) {
  EXPECT_EXIT(std::exit(run({"intox", "run", "blink.fig2", "--point",
                             "1"})),
              ::testing::ExitedWithCode(2),
              "intox: --point 1 out of range \\(sweep has 1 point\\)");
}

TEST(CliDeathTest, MalformedPointExitsTwo) {
  EXPECT_EXIT(std::exit(run({"intox", "run", "blink.fig2", "--point",
                             "two"})),
              ::testing::ExitedWithCode(2),
              "intox: --point expects a non-negative integer");
}

TEST(CliDeathTest, PointRecordWithoutPointExitsTwo) {
  EXPECT_EXIT(std::exit(run({"intox", "run", "blink.fig2",
                             "--point-record", "/tmp/r.json"})),
              ::testing::ExitedWithCode(2),
              "intox: --point-record requires --point");
}

TEST(CliDeathTest, HelpExitsZero) {
  EXPECT_EXIT(std::exit(run({"intox", "help"})),
              ::testing::ExitedWithCode(0), "");
}

TEST(CliDeathTest, ListExitsZero) {
  EXPECT_EXIT(std::exit(run({"intox", "list"})),
              ::testing::ExitedWithCode(0), "");
}

TEST(CliDeathTest, KnobsExitsZero) {
  EXPECT_EXIT(std::exit(run({"intox", "knobs", "blink.fig2"})),
              ::testing::ExitedWithCode(0), "");
}

}  // namespace
}  // namespace intox::scenario
