// §3.2 RON probe-manipulation attack, end-to-end.
#include <gtest/gtest.h>

#include "ron/attack.hpp"

namespace intox::ron {
namespace {

TEST(RonAttack, NoAttackStaysDirect) {
  RonExperimentConfig cfg;
  cfg.attack = false;
  const auto r = run_ron_attack_experiment(cfg);
  EXPECT_TRUE(r.routed_direct_before);
  EXPECT_FALSE(r.routed_via_attacker_after);
  EXPECT_EQ(r.via_after, 0u);  // still direct
  EXPECT_EQ(r.probes_dropped, 0u);
}

TEST(RonAttack, ProbeDropsDivertTrafficThroughAttacker) {
  RonExperimentConfig cfg;
  const auto r = run_ron_attack_experiment(cfg);
  EXPECT_TRUE(r.routed_direct_before);
  EXPECT_TRUE(r.routed_via_attacker_after);
  EXPECT_GT(r.probes_dropped, 0u);
}

TEST(RonAttack, DataLatencyRisesButDataNeverTouched) {
  RonExperimentConfig cfg;
  const auto r = run_ron_attack_experiment(cfg);
  // The real direct path was perfect the whole time; traffic now takes
  // the attacker's 2x15 ms detour purely because probes were dropped.
  EXPECT_GT(r.mean_latency_after_ms, 2.0 * r.mean_latency_before_ms);
  // Only probes were dropped; the data stream is untouched and small
  // relative to total traffic.
  EXPECT_GT(r.data_packets_sent, 100u);
}

TEST(RonAttack, PartialDropRateStillWorks) {
  RonExperimentConfig cfg;
  cfg.attacker.probe_drop_prob = 0.7;  // noisy attacker
  cfg.attack_duration = sim::seconds(40);
  const auto r = run_ron_attack_experiment(cfg);
  EXPECT_TRUE(r.routed_via_attacker_after);
}

TEST(RonAttack, Deterministic) {
  RonExperimentConfig cfg;
  const auto a = run_ron_attack_experiment(cfg);
  const auto b = run_ron_attack_experiment(cfg);
  EXPECT_EQ(a.probes_dropped, b.probes_dropped);
  EXPECT_EQ(a.route_changes, b.route_changes);
  EXPECT_DOUBLE_EQ(a.mean_latency_after_ms, b.mean_latency_after_ms);
}

}  // namespace
}  // namespace intox::ron
