#include "ron/overlay.hpp"

#include <gtest/gtest.h>

namespace intox::ron {
namespace {

struct Mesh {
  sim::Scheduler sched;
  RonConfig cfg;
  std::unique_ptr<Overlay> overlay;

  explicit Mesh(std::size_t nodes = 3) {
    sim::LinkConfig base;
    base.rate_bps = 1e9;
    base.prop_delay = sim::millis(10);
    overlay = std::make_unique<Overlay>(sched, cfg, nodes, base);
  }
};

TEST(Overlay, ProbesPopulateEstimates) {
  Mesh m;
  m.overlay->start();
  m.sched.run_until(sim::seconds(3));
  m.overlay->stop();
  const LinkEstimate& e = m.overlay->estimate(0, 1);
  EXPECT_TRUE(e.valid);
  EXPECT_GT(e.probes_sent, 5u);
  // The most recent probe may still be in flight at the cut-off.
  EXPECT_GE(e.probes_answered + 1, e.probes_sent);
  EXPECT_NEAR(e.latency_s, 0.010, 0.003);
  EXPECT_LT(e.loss, 0.01);
}

TEST(Overlay, PrefersDirectPathWhenHealthy) {
  Mesh m;
  m.overlay->start();
  m.sched.run_until(sim::seconds(5));
  m.overlay->stop();
  for (NodeId s = 0; s < 3; ++s) {
    for (NodeId d = 0; d < 3; ++d) {
      if (s != d) {
        EXPECT_TRUE(m.overlay->route(s, d).direct);
      }
    }
  }
}

TEST(Overlay, DetectsLinkFailureAndDetours) {
  Mesh m;
  m.overlay->start();
  m.sched.run_until(sim::seconds(3));
  ASSERT_TRUE(m.overlay->route(0, 1).direct);
  // Hard failure of the direct 0->1 link.
  m.overlay->link(0, 1).set_up(false);
  m.sched.run_until(sim::seconds(10));
  m.overlay->stop();
  const OverlayRoute r = m.overlay->route(0, 1);
  EXPECT_FALSE(r.direct);
  EXPECT_EQ(r.via, 2u);  // only alternative in a 3-node mesh
  EXPECT_GT(m.overlay->estimate(0, 1).loss, 0.5);
}

TEST(Overlay, RecoversWhenLinkHeals) {
  Mesh m;
  m.overlay->start();
  m.sched.run_until(sim::seconds(2));
  m.overlay->link(0, 1).set_up(false);
  m.sched.run_until(sim::seconds(10));
  ASSERT_FALSE(m.overlay->route(0, 1).direct);
  m.overlay->link(0, 1).set_up(true);
  m.sched.run_until(sim::seconds(25));
  m.overlay->stop();
  EXPECT_TRUE(m.overlay->route(0, 1).direct);
}

TEST(Overlay, DataFollowsRouteAndReportsLatency) {
  Mesh m;
  m.overlay->start();
  m.sched.run_until(sim::seconds(3));
  sim::Duration direct_latency = 0;
  m.overlay->send_data(0, 1, 512, [&](sim::Duration l) { direct_latency = l; });
  m.sched.run_until(sim::seconds(4));
  EXPECT_GT(direct_latency, sim::millis(9));
  EXPECT_LT(direct_latency, sim::millis(15));

  // Fail the direct link; after rerouting, data takes two legs.
  m.overlay->link(0, 1).set_up(false);
  m.sched.run_until(sim::seconds(12));
  sim::Duration detour_latency = 0;
  m.overlay->send_data(0, 1, 512, [&](sim::Duration l) { detour_latency = l; });
  m.sched.run_until(sim::seconds(13));
  m.overlay->stop();
  EXPECT_GT(detour_latency, sim::millis(18));
}

TEST(Overlay, SlowDirectPathTriggersDetourOnLatency) {
  // Direct 0->1 is 50 ms; the detour via 2 totals ~20 ms: RON should
  // prefer the detour even with zero loss anywhere.
  sim::Scheduler sched;
  RonConfig cfg;
  sim::LinkConfig base;
  base.rate_bps = 1e9;
  base.prop_delay = sim::millis(10);
  Overlay overlay{sched, cfg, 3, base};
  sim::LinkConfig slow = base;
  slow.prop_delay = sim::millis(50);
  overlay.set_link_config(0, 1, slow);
  overlay.set_link_config(1, 0, slow);
  overlay.start();
  sched.run_until(sim::seconds(8));
  overlay.stop();
  const OverlayRoute r = overlay.route(0, 1);
  EXPECT_FALSE(r.direct);
  EXPECT_EQ(r.via, 2u);
}

TEST(Overlay, RouteChangesAreCounted) {
  Mesh m;
  m.overlay->start();
  m.sched.run_until(sim::seconds(3));
  EXPECT_EQ(m.overlay->route_changes(), 0u);
  m.overlay->link(0, 1).set_up(false);
  m.sched.run_until(sim::seconds(10));
  m.overlay->stop();
  EXPECT_GE(m.overlay->route_changes(), 1u);
}

}  // namespace
}  // namespace intox::ron
