#include "validate/invariant.hpp"

#include <gtest/gtest.h>

#include <string>

namespace intox::validate {
namespace {

TEST(Invariant, PassingConditionIsFree) {
  ScopedInvariantMode guard{InvariantMode::kThrow};
  reset_invariant_violations();
  INTOX_INVARIANT(1 + 1 == 2, "arithmetic broke");
  EXPECT_EQ(invariant_violations(), 0u);
  EXPECT_EQ(last_invariant_message(), "");
}

TEST(Invariant, ThrowModeThrowsWithFormattedMessage) {
  ScopedInvariantMode guard{InvariantMode::kThrow};
  reset_invariant_violations();
  try {
    INTOX_INVARIANT(false, "lost %d of %d shards", 3, 8);
    FAIL() << "expected InvariantError";
  } catch (const InvariantError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("invariant violated"), std::string::npos);
    EXPECT_NE(what.find("lost 3 of 8 shards"), std::string::npos);
    EXPECT_NE(what.find("invariant_test.cpp"), std::string::npos);
  }
  EXPECT_EQ(invariant_violations(), 1u);
}

TEST(Invariant, CountModeAccumulatesAndContinues) {
  ScopedInvariantMode guard{InvariantMode::kCount};
  reset_invariant_violations();
  bool reached = false;
  INTOX_INVARIANT(false, "first");
  INTOX_INVARIANT(false, "second");
  reached = true;  // control flow continues past violations
  EXPECT_TRUE(reached);
  EXPECT_EQ(invariant_violations(), 2u);
  EXPECT_NE(last_invariant_message().find("second"), std::string::npos);
}

TEST(Invariant, ResetClearsCounterAndMessage) {
  ScopedInvariantMode guard{InvariantMode::kCount};
  INTOX_INVARIANT(false, "stale");
  reset_invariant_violations();
  EXPECT_EQ(invariant_violations(), 0u);
  EXPECT_EQ(last_invariant_message(), "");
}

TEST(Invariant, ConditionEvaluatedExactlyOnce) {
  ScopedInvariantMode guard{InvariantMode::kCount};
  int evals = 0;
  auto touch = [&evals] {
    ++evals;
    return true;
  };
  INTOX_INVARIANT(touch(), "side effects must not double-fire");
  EXPECT_EQ(evals, 1);
}

TEST(Invariant, ScopedModeRestoresPrevious) {
  const InvariantMode before = invariant_mode();
  {
    ScopedInvariantMode guard{InvariantMode::kThrow};
    EXPECT_EQ(invariant_mode(), InvariantMode::kThrow);
    {
      ScopedInvariantMode inner{InvariantMode::kCount};
      EXPECT_EQ(invariant_mode(), InvariantMode::kCount);
    }
    EXPECT_EQ(invariant_mode(), InvariantMode::kThrow);
  }
  EXPECT_EQ(invariant_mode(), before);
}

TEST(Invariant, FatalModeAborts) {
  ASSERT_DEATH(
      {
        set_invariant_mode(InvariantMode::kFatal);
        INTOX_INVARIANT(false, "fatal mode must abort, message=%s", "boom");
      },
      "invariant violated: fatal mode must abort");
}

}  // namespace
}  // namespace intox::validate
