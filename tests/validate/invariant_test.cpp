#include "validate/invariant.hpp"

#include <gtest/gtest.h>

#include <string>

namespace intox::validate {
namespace {

TEST(Invariant, PassingConditionIsFree) {
  ScopedInvariantMode guard{InvariantMode::kThrow};
  reset_invariant_violations();
  INTOX_INVARIANT(1 + 1 == 2, "arithmetic broke");
  EXPECT_EQ(invariant_violations(), 0u);
  EXPECT_EQ(last_invariant_message(), "");
}

TEST(Invariant, ThrowModeThrowsWithFormattedMessage) {
  ScopedInvariantMode guard{InvariantMode::kThrow};
  reset_invariant_violations();
  try {
    INTOX_INVARIANT(false, "lost %d of %d shards", 3, 8);
    FAIL() << "expected InvariantError";
  } catch (const InvariantError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("invariant violated"), std::string::npos);
    EXPECT_NE(what.find("lost 3 of 8 shards"), std::string::npos);
    EXPECT_NE(what.find("invariant_test.cpp"), std::string::npos);
  }
  EXPECT_EQ(invariant_violations(), 1u);
}

TEST(Invariant, CountModeAccumulatesAndContinues) {
  ScopedInvariantMode guard{InvariantMode::kCount};
  reset_invariant_violations();
  bool reached = false;
  INTOX_INVARIANT(false, "first");
  INTOX_INVARIANT(false, "second");
  reached = true;  // control flow continues past violations
  EXPECT_TRUE(reached);
  EXPECT_EQ(invariant_violations(), 2u);
  EXPECT_NE(last_invariant_message().find("second"), std::string::npos);
}

TEST(Invariant, ResetClearsCounterAndMessage) {
  ScopedInvariantMode guard{InvariantMode::kCount};
  INTOX_INVARIANT(false, "stale");
  reset_invariant_violations();
  EXPECT_EQ(invariant_violations(), 0u);
  EXPECT_EQ(last_invariant_message(), "");
}

TEST(Invariant, ConditionEvaluatedExactlyOnce) {
  ScopedInvariantMode guard{InvariantMode::kCount};
  int evals = 0;
  auto touch = [&evals] {
    ++evals;
    return true;
  };
  INTOX_INVARIANT(touch(), "side effects must not double-fire");
  EXPECT_EQ(evals, 1);
}

TEST(Invariant, ScopedModeRestoresPrevious) {
  const InvariantMode before = invariant_mode();
  {
    ScopedInvariantMode guard{InvariantMode::kThrow};
    EXPECT_EQ(invariant_mode(), InvariantMode::kThrow);
    {
      ScopedInvariantMode inner{InvariantMode::kCount};
      EXPECT_EQ(invariant_mode(), InvariantMode::kCount);
    }
    EXPECT_EQ(invariant_mode(), InvariantMode::kThrow);
  }
  EXPECT_EQ(invariant_mode(), before);
}

TEST(Invariant, RecentMessagesKeepOldestFirstOrder) {
  ScopedInvariantMode guard{InvariantMode::kCount};
  reset_invariant_violations();
  INTOX_INVARIANT(false, "first");
  INTOX_INVARIANT(false, "second");
  INTOX_INVARIANT(false, "third");
  const std::vector<std::string> recent = recent_invariant_messages();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_NE(recent[0].find("first"), std::string::npos);
  EXPECT_NE(recent[1].find("second"), std::string::npos);
  EXPECT_NE(recent[2].find("third"), std::string::npos);
}

TEST(Invariant, RecentMessagesRingKeepsLastK) {
  ScopedInvariantMode guard{InvariantMode::kCount};
  reset_invariant_violations();
  for (int i = 0; i < static_cast<int>(kRecentInvariantMessages) + 5; ++i) {
    INTOX_INVARIANT(false, "violation %d", i);
  }
  const std::vector<std::string> recent = recent_invariant_messages();
  ASSERT_EQ(recent.size(), kRecentInvariantMessages);
  // The 5 oldest were evicted; the ring starts at "violation 5".
  EXPECT_NE(recent.front().find("violation 5"), std::string::npos);
  EXPECT_NE(recent.back().find("violation 20"), std::string::npos);
}

TEST(Invariant, ResetClearsRecentMessages) {
  ScopedInvariantMode guard{InvariantMode::kCount};
  INTOX_INVARIANT(false, "stale ring entry");
  reset_invariant_violations();
  EXPECT_TRUE(recent_invariant_messages().empty());
}

TEST(Invariant, ObserverSeesEveryViolationAndReturnsPrevious) {
  ScopedInvariantMode guard{InvariantMode::kCount};
  reset_invariant_violations();
  static int observed = 0;
  static std::string last_text;
  auto observer = +[](const char* file, int line, const char* message) {
    ++observed;
    last_text = message;
    EXPECT_NE(file, nullptr);
    EXPECT_GT(line, 0);
  };
  InvariantObserver prev = set_invariant_observer(observer);
  observed = 0;
  INTOX_INVARIANT(false, "watched %d", 42);
  INTOX_INVARIANT(false, "watched %d", 43);
  EXPECT_EQ(set_invariant_observer(prev), observer);
  EXPECT_EQ(observed, 2);
  EXPECT_NE(last_text.find("watched 43"), std::string::npos);
  // With the previous observer restored, firing again must not reach
  // the uninstalled one.
  INTOX_INVARIANT(false, "unwatched");
  EXPECT_EQ(observed, 2);
  reset_invariant_violations();
}

TEST(Invariant, FatalModeAborts) {
  ASSERT_DEATH(
      {
        set_invariant_mode(InvariantMode::kFatal);
        INTOX_INVARIANT(false, "fatal mode must abort, message=%s", "boom");
      },
      "invariant violated: fatal mode must abort");
}

}  // namespace
}  // namespace intox::validate
