// validate_sweep — the simulation-integrity sweep.
//
// Runs each bench family's configuration (scaled down so the sweep stays
// in test-suite time) with invariants armed in throw mode, so any silent
// corruption the integrity layer guards against — dropped shard merges,
// wrapped checksums, non-monotonic clocks, lost histogram mass — fails
// the suite loudly. Where a differential oracle exists, the fast path is
// cross-checked against it on the same inputs the benches use.
//
// Future perf PRs must keep this green: it is the harness that says the
// hot paths still compute the statistics the Fig. 2 validation rests on.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "blink/cell_process.hpp"
#include "net/checksum.hpp"
#include "net/packet.hpp"
#include "pcc/experiment.hpp"
#include "pytheas/experiment.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "sim/rng.hpp"
#include "sim/runner.hpp"
#include "sim/stats.hpp"
#include "sketch/attack.hpp"
#include "sketch/rotation.hpp"
#include "validate/invariant.hpp"
#include "validate/oracles.hpp"

namespace intox {
namespace {

/// Arms throw-mode invariants for the duration of a test and asserts at
/// scope exit that no violation fired (a throw would already have failed
/// the test; the counter catches violations swallowed on other threads).
class ArmedInvariants {
 public:
  ArmedInvariants() : guard_(validate::InvariantMode::kThrow) {
    validate::reset_invariant_violations();
  }
  ~ArmedInvariants() {
    EXPECT_EQ(validate::invariant_violations(), 0u)
        << validate::last_invariant_message();
  }

 private:
  validate::ScopedInvariantMode guard_;
};

// --- BLINK (FIG2 / BLINK-TR configurations) ----------------------------

TEST(ValidateSweep, BlinkFig2GridUnderStatsOracle) {
  ArmedInvariants armed;
  // The FIG2 aggregation shape: flow-level cell-process trials resampled
  // onto the bench's 25 s grid, SeriesStats folded in trial order, then
  // every grid cell cross-checked against two-pass exact recomputation.
  blink::CellProcessConfig cfg;  // defaults are the paper's tR/qm
  const std::size_t trials = 24;
  sim::Rng base{42};
  sim::SeriesStats agg{0, sim::seconds(500), sim::seconds(25)};
  std::vector<std::vector<double>> resampled(trials);
  for (std::size_t r = 0; r < trials; ++r) {
    sim::Rng rng = base.fork(r);
    const sim::TimeSeries series = blink::simulate_cell_process(cfg, rng);
    agg.add(series);
    resampled[r] = series.resample(0, sim::seconds(500), sim::seconds(25));
  }
  ASSERT_EQ(agg.points(), resampled[0].size());
  for (std::size_t i = 0; i < agg.points(); ++i) {
    std::vector<double> column;
    for (const auto& row : resampled) column.push_back(row[i]);
    const validate::ExactStats ex = validate::exact_stats(column);
    const sim::RunningStats& cell = agg.at(i);
    ASSERT_EQ(cell.count(), ex.n);
    EXPECT_NEAR(cell.mean(), ex.mean, 1e-9 + std::abs(ex.mean) * 1e-9);
    EXPECT_NEAR(cell.variance(), ex.variance,
                1e-7 + std::abs(ex.variance) * 1e-7);
    EXPECT_DOUBLE_EQ(cell.min(), ex.min);
    EXPECT_DOUBLE_EQ(cell.max(), ex.max);
  }
}

TEST(ValidateSweep, BlinkTrSweepParallelMatchesSerial) {
  ArmedInvariants armed;
  // The BLINK-TR Monte-Carlo column: the sharded runner must reproduce
  // the serial fold bit-for-bit (determinism is itself an invariant —
  // thread count may change wall clock and nothing else).
  blink::CellProcessConfig cfg;
  cfg.tr_seconds = 4.0;
  cfg.horizon_seconds = 200.0;
  const std::size_t runs = 64;
  sim::Rng base{7};
  sim::Rng serial_rng{7};
  const double serial =
      blink::empirical_success_rate(cfg, 32, runs, serial_rng);
  for (std::size_t threads : {1u, 4u}) {
    sim::ParallelRunner runner{threads};
    const double parallel =
        blink::empirical_success_rate(cfg, 32, runs, base, runner);
    EXPECT_DOUBLE_EQ(parallel, serial) << threads << " threads";
  }
}

// --- PCC (PCC-OSC / PCC-FLEET configurations) --------------------------

TEST(ValidateSweep, PccOscillationCleanAndAttacked) {
  ArmedInvariants armed;
  pcc::PccExperimentConfig cfg;
  cfg.duration = sim::seconds(20);  // bench uses 90 s; same shape
  cfg.seed = 4;
  const auto clean = pcc::run_pcc_experiment(cfg);
  cfg.attack = true;
  const auto attacked = pcc::run_pcc_experiment(cfg);
  // The full event-loop ran under armed invariants: monotonic clock,
  // conserved link time arithmetic, ordered TimeSeries. Sanity on top:
  EXPECT_GT(clean.mean_rate_bps, 0.0);
  EXPECT_GT(clean.decisions, 0u);
  EXPECT_GT(attacked.attacker_observed, 0u);
  // The time-weighted mean of the recorded rate series must agree with
  // the step-function integral over the same window recomputed here.
  const auto& pts = clean.rate.points();
  ASSERT_FALSE(pts.empty());
  const sim::Time from = 0, to = pts.back().first;
  if (to > from) {
    double integral = 0.0;
    sim::Time prev_t = from;
    double prev_v = 0.0;
    for (const auto& [t, v] : pts) {
      if (t > to) break;
      if (t > prev_t) integral += prev_v * static_cast<double>(t - prev_t);
      prev_t = std::max(prev_t, t);
      prev_v = v;
    }
    integral += prev_v * static_cast<double>(to - prev_t);
    EXPECT_NEAR(clean.rate.mean_over(from, to),
                integral / static_cast<double>(to - from),
                1e-6 * std::abs(integral / static_cast<double>(to - from)));
  }
}

TEST(ValidateSweep, PccFleetSharedBottleneck) {
  ArmedInvariants armed;
  pcc::PccExperimentConfig cfg;
  cfg.flows = 3;
  cfg.duration = sim::seconds(15);
  cfg.seed = 11;
  const auto r = pcc::run_pcc_experiment(cfg);
  EXPECT_GT(r.mean_rate_bps, 0.0);
  EXPECT_FALSE(r.delivered_bps.empty());
}

// --- Pytheas (PYTH-QOE configuration) ----------------------------------

TEST(ValidateSweep, PytheasPoisoningEpochLoop) {
  ArmedInvariants armed;
  pytheas::PoisonConfig cfg;
  cfg.legit_sessions = 60;
  cfg.bot_sessions = 8;
  cfg.epochs = 40;
  cfg.warmup_epochs = 10;
  const auto r = pytheas::run_poisoning_experiment(cfg);
  EXPECT_EQ(r.legit_qoe.size(), cfg.epochs);
  EXPECT_GT(r.mean_qoe_before, 0.0);
}

// --- Sketch (SKETCH-POLLUTE configuration) -----------------------------

TEST(ValidateSweep, SketchPollutionAndRotation) {
  ArmedInvariants armed;
  const std::size_t cells = 1024;
  const std::uint32_t hashes = 3, seed = 99;
  std::vector<std::uint64_t> legit;
  for (std::uint64_t k = 1; k <= 200; ++k) legit.push_back(k * 1000003);
  const auto attack =
      sketch::craft_saturating_keys(cells, hashes, seed, 150, 32);
  const auto outcome =
      sketch::run_bloom_pollution(cells, hashes, seed, legit, attack);
  EXPECT_GE(outcome.fill_after, outcome.fill_before);

  sketch::RotationConfig rot;
  rot.cells = 2048;
  rot.rotation_period = 512;
  rot.retained_keys = 256;
  sketch::RotatingBloom rotating{rot};
  for (std::uint64_t k = 0; k < 4096; ++k) rotating.insert(k * 2654435761u);
  EXPECT_EQ(rotating.rotations(), 8u);
}

// --- net: checksum + wire codec under the RFC 1071 oracle --------------

TEST(ValidateSweep, ChecksumFuzzAgainstReference) {
  ArmedInvariants armed;
  sim::Rng rng{123};
  for (int round = 0; round < 40; ++round) {
    // Cover the overflow regime: spans up to 256 KiB, odd sizes included.
    const auto size = static_cast<std::size_t>(
        rng.uniform_int(0, round < 30 ? 2048 : 256 * 1024));
    std::vector<std::byte> buf(size);
    for (auto& b : buf) {
      b = static_cast<std::byte>(rng.uniform_int(0, 255));
    }
    const auto initial =
        static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffffffu));
    ASSERT_EQ(net::internet_checksum(buf, initial),
              validate::reference_internet_checksum(buf, initial))
        << "size=" << size << " initial=" << initial;
  }
}

TEST(ValidateSweep, PacketRoundTripAndCorruptionDetection) {
  ArmedInvariants armed;
  sim::Rng rng{321};
  for (int round = 0; round < 60; ++round) {
    net::Packet p;
    p.src = net::Ipv4Addr{static_cast<std::uint32_t>(
        rng.uniform_int(1, 0xfffffffeu))};
    p.dst = net::Ipv4Addr{static_cast<std::uint32_t>(
        rng.uniform_int(1, 0xfffffffeu))};
    p.ttl = static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    p.payload_bytes =
        static_cast<std::uint32_t>(rng.uniform_int(0, 60000));
    switch (round % 3) {
      case 0: {
        net::TcpHeader t;
        t.src_port = static_cast<std::uint16_t>(rng.uniform_int(1, 65535));
        t.dst_port = static_cast<std::uint16_t>(rng.uniform_int(1, 65535));
        t.seq = static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffffffu));
        t.ack = static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffffffu));
        t.syn = rng.bernoulli(0.5);
        t.ack_flag = rng.bernoulli(0.5);
        p.l4 = t;
        break;
      }
      case 1: {
        net::UdpHeader u;
        u.src_port = static_cast<std::uint16_t>(rng.uniform_int(1, 65535));
        u.dst_port = static_cast<std::uint16_t>(rng.uniform_int(1, 65535));
        p.l4 = u;
        break;
      }
      default: {
        net::IcmpHeader ic;
        ic.id = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
        ic.seq = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
        p.l4 = ic;
        break;
      }
    }

    const auto wire = net::serialize(p);
    const auto parsed = net::parse(wire);
    ASSERT_TRUE(parsed.has_value()) << "round " << round;
    EXPECT_EQ(parsed->src.value(), p.src.value());
    EXPECT_EQ(parsed->dst.value(), p.dst.value());
    EXPECT_EQ(parsed->ttl, p.ttl);
    EXPECT_EQ(parsed->proto(), p.proto());
    EXPECT_EQ(parsed->payload_bytes, p.payload_bytes);
    if (const auto* t = p.tcp()) {
      ASSERT_NE(parsed->tcp(), nullptr);
      EXPECT_EQ(parsed->tcp()->seq, t->seq);
      EXPECT_EQ(parsed->tcp()->src_port, t->src_port);
    }

    // Every wire byte is covered by either the IP or the L4 checksum, so
    // any single-bit flip must be rejected (one's-complement sums detect
    // all single-bit errors).
    auto corrupted = wire;
    const auto at = static_cast<std::size_t>(
        rng.uniform_int(0, corrupted.size() - 1));
    const auto bit = static_cast<int>(rng.uniform_int(0, 7));
    corrupted[at] ^= static_cast<std::byte>(1 << bit);
    EXPECT_FALSE(net::parse(corrupted).has_value())
        << "flip at byte " << at << " bit " << bit << " went undetected";
  }
}

// --- Histogram vs exact sorted quantiles -------------------------------

TEST(ValidateSweep, HistogramQuantilesTrackExactQuantiles) {
  ArmedInvariants armed;
  sim::Rng rng{55};
  sim::Histogram h{0.0, 50.0, 100};  // width 0.5
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.lognormal(2.0, 0.8);  // some mass beyond hi=50
    samples.push_back(x);
    h.add(x);
  }
  EXPECT_EQ(h.total(), samples.size());
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double exact = validate::exact_quantile(samples, q);
    const double approx = h.quantile(q);
    if (exact < 50.0) {
      EXPECT_NEAR(approx, exact, 0.5 + 1e-9) << "q=" << q;
    } else {
      EXPECT_GE(approx, 50.0) << "q=" << q;
    }
  }
  // The extremes are exact by construction now.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), validate::exact_quantile(samples, 1.0));
  EXPECT_DOUBLE_EQ(h.quantile(0.0), validate::exact_quantile(samples, 0.0));
}

// --- Invariant counters exported through the metrics registry ----------

// NDEBUG builds run invariants in count-and-continue mode; the degraded
// paths only show up as a nonzero "validate.invariant_violations"
// counter. This asserts the registry bridge reports exactly what the
// validate/ layer counted — and that after the armed sweeps above, the
// default-seed configurations left it at zero.
TEST(ValidateSweep, InvariantCountersExportedThroughRegistry) {
  obs::export_invariant_counters();
  validate::reset_invariant_violations();

  auto exported = [] {
    return obs::Registry::global().snapshot().counters.at(
        "validate.invariant_violations");
  };
  EXPECT_EQ(exported(), 0u)
      << "default-seed sweep tripped an invariant degraded path: "
      << validate::last_invariant_message();

  // The bridge is live, not a stale copy: a counted violation is visible
  // in the very next snapshot (and in any BENCH_*.json written then).
  {
    validate::ScopedInvariantMode count_mode{validate::InvariantMode::kCount};
    INTOX_INVARIANT(false, "probe violation for the registry bridge");
    EXPECT_EQ(exported(), 1u);
  }
  validate::reset_invariant_violations();
  EXPECT_EQ(exported(), 0u);
}

// --- RunningStats shard merging vs exact recomputation -----------------

TEST(ValidateSweep, ShardedMergeMatchesExactRecomputation) {
  ArmedInvariants armed;
  sim::Rng rng{77};
  std::vector<double> all;
  std::vector<sim::RunningStats> shards(8);
  for (int i = 0; i < 8000; ++i) {
    const double x = 1e5 + rng.normal(0.0, 25.0);
    all.push_back(x);
    shards[static_cast<std::size_t>(i) % shards.size()].add(x);
  }
  sim::RunningStats folded;
  for (const auto& s : shards) folded.merge(s);
  const validate::ExactStats ex = validate::exact_stats(all);
  EXPECT_EQ(folded.count(), ex.n);
  EXPECT_NEAR(folded.mean(), ex.mean, std::abs(ex.mean) * 1e-12);
  EXPECT_NEAR(folded.variance(), ex.variance, ex.variance * 1e-8);
  EXPECT_DOUBLE_EQ(folded.min(), ex.min);
  EXPECT_DOUBLE_EQ(folded.max(), ex.max);
}

}  // namespace
}  // namespace intox
