// Self-checks for the differential oracles: an oracle that is itself
// wrong silently blesses the bug it was meant to catch.
#include "validate/oracles.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace intox::validate {
namespace {

TEST(ReferenceChecksum, KnownVectors) {
  const std::vector<std::byte> empty;
  EXPECT_EQ(reference_checksum_partial(empty), 0u);
  EXPECT_EQ(reference_internet_checksum(empty), 0xffff);

  std::vector<std::byte> two{std::byte{0x12}, std::byte{0x34}};
  EXPECT_EQ(reference_checksum_partial(two), 0x1234u);
  EXPECT_EQ(reference_internet_checksum(two), 0xffff - 0x1234);
}

TEST(ReferenceChecksum, FoldsInitialBeforeUse) {
  const std::vector<std::byte> empty;
  // An unfolded 32-bit partial must fold to the same 16-bit value.
  EXPECT_EQ(reference_checksum_partial(empty, 0x0001ffffu), 0x0001u);
}

TEST(ExactStatsOracle, AgreesWithRunningStats) {
  sim::Rng rng{7};
  std::vector<double> xs;
  sim::RunningStats rs;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.lognormal(1.0, 0.8);
    xs.push_back(x);
    rs.add(x);
  }
  const ExactStats ex = exact_stats(xs);
  EXPECT_EQ(ex.n, rs.count());
  EXPECT_NEAR(ex.mean, rs.mean(), 1e-9 * ex.mean);
  EXPECT_NEAR(ex.variance, rs.variance(), 1e-7 * ex.variance);
  EXPECT_DOUBLE_EQ(ex.min, rs.min());
  EXPECT_DOUBLE_EQ(ex.max, rs.max());
}

TEST(ExactQuantileOracle, MatchesPercentileConvention) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(exact_quantile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(exact_quantile(v, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(exact_quantile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(exact_quantile({3, 1, 2}, 0.5), 2.0);  // sorts a copy
  EXPECT_DOUBLE_EQ(exact_quantile(v, 0.5), sim::percentile(v, 0.5));
}

TEST(ReferenceQueue, FiresInTimeThenFifoOrder) {
  ReferenceQueue q;
  const auto a = q.schedule_at(30);
  const auto b = q.schedule_at(10);
  const auto c = q.schedule_at(10);  // same instant: FIFO after b
  const auto fired = q.run_until(100);
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0].id, b);
  EXPECT_EQ(fired[1].id, c);
  EXPECT_EQ(fired[2].id, a);
  EXPECT_EQ(q.now(), 100);
}

TEST(ReferenceQueue, ClampsPastAndCancels) {
  ReferenceQueue q;
  q.run_until(50);
  const auto late = q.schedule_at(10);  // clamped to now=50
  const auto gone = q.schedule_at(60);
  EXPECT_TRUE(q.cancel(gone));
  EXPECT_FALSE(q.cancel(gone));
  EXPECT_FALSE(q.cancel(9999));
  const auto fired = q.run_until(55);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].id, late);
  EXPECT_EQ(fired[0].time, 50);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(ReferenceQueue, RunHonorsLimit) {
  ReferenceQueue q;
  for (int i = 0; i < 5; ++i) q.schedule_at(i * 10);
  EXPECT_EQ(q.run(3).size(), 3u);
  EXPECT_EQ(q.pending(), 2u);
}

}  // namespace
}  // namespace intox::validate
