// Example: §5-II automated attack discovery.
//
// Point the black-box fuzzer at a fresh Blink pipeline and ask for "a
// reroute happened". Watch it rediscover the §3.1 attack (always-active
// duplicate-sequence flow bursts) with no knowledge of Blink's internals
// beyond a progress score.
#include <cstdio>

#include "blink/blink_node.hpp"
#include "obs/report.hpp"
#include "supervisor/attack_synth.hpp"

using namespace intox;
using namespace intox::supervisor;

constexpr net::Prefix kVictim{net::Ipv4Addr{10, 0, 0, 0}, 8};

int main(int argc, char** argv) {
  obs::BenchSession session{argc, argv, "ATTACK-SYNTH"};
  SynthConfig cfg;
  cfg.flow_pool = 64;
  cfg.sequence_length = 1200;
  cfg.max_iterations = 6000;
  cfg.seed = 7;

  blink::BlinkConfig blink_cfg;
  blink_cfg.cells = 16;  // small instance: tractable demo

  std::printf("searching for a packet sequence that makes Blink reroute "
              "%s...\n", net::to_string(kVictim).c_str());

  AttackSynthesizer synth{cfg};
  const auto result = synth.search(
      [&]() -> std::unique_ptr<dataplane::PacketProcessor> {
        auto node = std::make_unique<blink::BlinkNode>(blink_cfg);
        node->monitor_prefix(kVictim, 0, 1);
        return node;
      },
      [](dataplane::PacketProcessor& p) {
        auto& node = static_cast<blink::BlinkNode&>(p);
        double s = static_cast<double>(
            node.selector(kVictim)->occupied_count());
        s += 50.0 * static_cast<double>(node.max_retransmitting());
        s += 1000.0 * static_cast<double>(node.reroutes().size());
        return s;
      },
      [](dataplane::PacketProcessor& p) {
        return !static_cast<blink::BlinkNode&>(p).reroutes().empty();
      });

  if (!result.found) {
    std::printf("no attack found in %zu iterations (best score %.0f)\n",
                result.iterations, result.best_score);
    return 1;
  }

  std::printf("ATTACK FOUND after %zu candidate sequences.\n",
              result.iterations);

  // Characterize the witness: how §3.1-shaped is it?
  std::size_t repeats = 0, tight_gaps = 0;
  for (const auto& g : result.witness) {
    repeats += g.repeat_seq;
    tight_gaps += g.gap_ms <= 25;
  }
  std::printf("witness: %zu packets, %.0f%% duplicate-seq, %.0f%% in tight "
              "bursts (<=25 ms gaps)\n",
              result.witness.size(),
              100.0 * static_cast<double>(repeats) /
                  static_cast<double>(result.witness.size()),
              100.0 * static_cast<double>(tight_gaps) /
                  static_cast<double>(result.witness.size()));

  // Replay the witness to prove it is self-contained.
  auto victim = std::make_unique<blink::BlinkNode>(blink_cfg);
  victim->monitor_prefix(kVictim, 0, 1);
  synth.replay(result.witness, *victim);
  std::printf("replay on a fresh Blink instance: %zu reroute(s) triggered\n",
              victim->reroutes().size());
  std::printf("\nthe fuzzer rediscovered the paper's attack recipe: keep "
              "flows alive and\nretransmit in synchronized bursts — exactly "
              "the §3.1 construction.\n");
  return 0;
}
