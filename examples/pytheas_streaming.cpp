// Example: the §4.1 Pytheas report-poisoning attack, with the §5 defense
// toggle.
//
// 200 honest video sessions stream through a Pytheas group that picks
// between two delivery options (arm 0: good, arm 1: mediocre). At epoch
// 30 a 40-bot botnet joins and lies about its QoE, 3 reports per epoch.
// Run with --defend to install the report-distribution guard.
#include <cstdio>
#include <cstring>
#include <memory>

#include "obs/report.hpp"
#include "pytheas/experiment.hpp"
#include "supervisor/pytheas_guard.hpp"

using namespace intox;
using namespace intox::pytheas;

int main(int argc, char** argv) {
  obs::BenchSession session{argc, argv, "PYTH-STREAM"};
  bool defend = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--defend") == 0) defend = true;
  }

  PoisonConfig cfg;
  cfg.bot_sessions = 40;
  std::printf("Pytheas group: 200 honest sessions + 40 bots (from epoch 30), "
              "%s\n\n", defend ? "DEFENSE ON" : "defense off (--defend)");

  std::shared_ptr<supervisor::PytheasGuard> guard;
  if (defend) guard = std::make_shared<supervisor::PytheasGuard>();
  const PoisonResult r = run_poisoning_experiment(cfg, guard);

  std::printf("%8s  %10s  %10s\n", "epoch", "group arm", "honest QoE");
  for (int e = 0; e < 120; e += 10) {
    const auto t = sim::seconds(static_cast<double>(e));
    std::printf("%8d  %10.0f  %10.2f  %s\n", e, r.chosen_arm.at(t),
                r.legit_qoe.at(t),
                e >= 30 ? (r.chosen_arm.at(t) > 0.5 ? "<- flipped to bad arm!"
                                                    : "(bots lying)")
                        : "");
  }

  std::printf("\nhonest-client QoE: %.2f before, %.2f after\n",
              r.mean_qoe_before, r.mean_qoe_after);
  std::printf("group exploited the bad arm in %.0f%% of the final epochs\n",
              r.flipped_fraction * 100.0);
  if (guard) {
    std::printf("guard filtered %llu reports (%llu rate-limited, %llu "
                "quarantined outliers)\n",
                static_cast<unsigned long long>(r.filtered_reports),
                static_cast<unsigned long long>(guard->rate_limited()),
                static_cast<unsigned long long>(guard->quarantined()));
  }
  return 0;
}
