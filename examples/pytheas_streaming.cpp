// Thin compatibility shim: this walk-through now lives in the scenario
// registry as "pytheas.streaming" (see src/scenario/). The binary keeps
// its CLI (`--defend`) so existing invocations stay valid; it forwards
// through the unified intox driver.
#include "scenario/shim.hpp"

int main(int argc, char** argv) {
  intox::scenario::LegacySpec spec;
  spec.switch_flags = {{"--defend", "defend"}};
  return intox::scenario::run_legacy_shim("pytheas.streaming", argc, argv,
                                          spec);
}
