// Example: §4.3 — who controls ICMP controls the map.
//
// Part 1 runs traceroute over a 3x3 grid three ways: honest, NetHide-
// obfuscated (defensive, minimal lying), and a malicious operator
// presenting a ring that does not exist.
//
// Part 2 shows the packet-level mechanism with real simulated switches:
// a TTL-limited probe crosses RoutedSwitches whose ICMP reply address
// has been rewritten — the exact knob both NetHide and the malicious
// operator turn.
#include <cstdio>

#include "dataplane/switch.hpp"
#include "nethide/obfuscate.hpp"
#include "obs/report.hpp"
#include "sim/network.hpp"

using namespace intox;
using namespace intox::nethide;

namespace {

void show_route(const char* label, const Topology& topo,
                const PathTable& table, NodeId src, NodeId dst) {
  std::printf("  %-10s", label);
  for (const Hop& h : traceroute(topo, table, src, dst)) {
    std::printf(" %2d:%s", h.ttl, net::to_string(h.from).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchSession session{argc, argv, "NETHIDE-TR"};
  std::printf("== Part 1: one network, three presented topologies ==\n");
  const Topology topo = Topology::grid(3, 3);
  const PathTable honest = PathTable::all_shortest_paths(topo);
  const auto defended = obfuscate(topo, ObfuscationConfig{});
  const auto faked = present_fake_topology(topo, Topology::ring(9));

  std::printf("traceroute 0 -> 8:\n");
  show_route("honest", topo, honest, 0, 8);
  show_route("nethide", topo, defended.presented, 0, 8);
  show_route("malicious", topo, faked.presented, 0, 8);

  std::printf("\nmetrics vs reality:      accuracy   utility   max-density\n");
  std::printf("  honest                 %8.3f  %8.3f  %8zu\n", 1.0, 1.0,
              max_flow_density(honest));
  std::printf("  nethide (defensive)    %8.3f  %8.3f  %8zu\n",
              defended.accuracy, defended.utility,
              defended.presented_max_density);
  std::printf("  malicious decoy        %8.3f  %8.3f  %8zu\n", faked.accuracy,
              faked.utility, faked.presented_max_density);

  std::printf("\n== Part 2: packet-level ICMP forgery ==\n");
  sim::Scheduler sched;
  sim::Network net{sched};
  dataplane::CallbackNode prober{"prober", nullptr};
  dataplane::RoutedSwitch r1{"r1", sched, net::Ipv4Addr{10, 255, 0, 1}};
  dataplane::RoutedSwitch r2{"r2", sched, net::Ipv4Addr{10, 255, 0, 2}};
  dataplane::CallbackNode target{"target", nullptr};
  net.connect(prober, 0, r1, 0, sim::LinkConfig{});
  net.connect(r1, 1, r2, 0, sim::LinkConfig{});
  net.connect(r2, 1, target, 0, sim::LinkConfig{});
  const net::Prefix dst_prefix{net::Ipv4Addr{198, 18, 0, 0}, 15};
  const net::Prefix back{net::Ipv4Addr{192, 0, 2, 0}, 24};
  r1.add_route(dst_prefix, 1);
  r1.add_route(back, 0);
  r2.add_route(dst_prefix, 1);
  r2.add_route(back, 0);

  // The "operator" rewrites r2's ICMP identity to a fantasy router.
  r2.set_reply_addr(net::Ipv4Addr{203, 0, 113, 77});

  prober.set_handler([&](net::Packet p, int) {
    if (const auto* icmp = p.icmp();
        icmp && icmp->type == net::IcmpType::kTimeExceeded) {
      std::printf("  reply from %s (ttl probe)\n",
                  net::to_string(p.src).c_str());
    }
  });

  for (std::uint8_t ttl = 1; ttl <= 2; ++ttl) {
    net::Packet probe;
    probe.src = net::Ipv4Addr{192, 0, 2, 9};
    probe.dst = net::Ipv4Addr{198, 18, 0, 1};
    probe.ttl = ttl;
    probe.l4 = net::UdpHeader{33434, static_cast<std::uint16_t>(33434 + ttl)};
    prober.inject(0, probe);
  }
  sched.run();
  std::printf("  (the second hop is really 10.255.0.2 — the ICMP source was "
              "forged to 203.0.113.77)\n");
  return 0;
}
