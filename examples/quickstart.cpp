// Quickstart: build a three-node network, push a mixed legitimate +
// malicious workload through a routed switch, and inspect counters.
//
// This is the smallest end-to-end use of the library; the other examples
// reproduce the paper's attacks on specific systems.
#include <cstdio>

#include "dataplane/switch.hpp"
#include "obs/report.hpp"
#include "sim/network.hpp"
#include "trafficgen/driver.hpp"
#include "trafficgen/synth.hpp"

using namespace intox;

int main(int argc, char** argv) {
  obs::BenchSession session{argc, argv, "QUICKSTART"};
  sim::Scheduler sched;
  sim::Network net{sched};

  // Topology: src host --- switch --- dst host.
  dataplane::CallbackNode src{"src", nullptr};
  dataplane::RoutedSwitch sw{"sw1", sched, net::Ipv4Addr{192, 0, 2, 1}};
  dataplane::CallbackNode dst{"dst", nullptr};
  net.connect(src, 0, sw, 0, sim::LinkConfig{});
  net.connect(sw, 1, dst, 0, sim::LinkConfig{});
  sw.add_route(net::Prefix{net::Ipv4Addr{10, 0, 0, 0}, 8}, 1);

  std::uint64_t delivered = 0;
  dst.set_handler([&](net::Packet, int) { ++delivered; });

  // Workload: 50 legitimate flows plus 5 always-active malicious flows,
  // all towards 10.0.0.0/8.
  sim::Rng rng{42};
  trafficgen::TraceConfig cfg;
  cfg.active_flows = 50;
  cfg.mean_duration = sim::seconds(5);
  cfg.horizon = sim::seconds(30);

  trafficgen::FlowPopulation pop{
      sched, rng.fork("drivers"),
      [&](net::Packet p) { src.inject(0, std::move(p)); }};
  sim::Rng trace_rng = rng.fork("trace");
  for (const auto& f : trafficgen::synthesize_trace(cfg, trace_rng)) {
    pop.add_legit(f);
  }
  sim::Rng bad_rng = rng.fork("malicious");
  for (const auto& f : trafficgen::synthesize_malicious_flows(
           cfg, 5, sim::seconds(1), bad_rng, 1u << 20)) {
    pop.add_malicious(f);
  }

  pop.start_all();
  sched.run_until(sim::seconds(30));
  pop.stop_all();

  std::printf("quickstart: simulated 30 s\n");
  std::printf("  flows:      %zu legit, %zu malicious\n", pop.legit_count(),
              pop.malicious_count());
  std::printf("  switch:     %llu forwarded, %llu no-route drops\n",
              static_cast<unsigned long long>(sw.counters().forwarded),
              static_cast<unsigned long long>(sw.counters().dropped_no_route));
  std::printf("  delivered:  %llu packets\n",
              static_cast<unsigned long long>(delivered));
  std::printf("  events:     %llu processed\n",
              static_cast<unsigned long long>(sched.events_processed()));
  return delivered > 0 ? 0 : 1;
}
