// Example: the §4.2 PCC oscillation attack.
//
// One PCC flow crosses a 20 Mbps bottleneck. A MitM on the bottleneck
// knows PCC's utility function and drops just enough packets in the
// rate-experiment intervals that neither the +eps nor the -eps arm ever
// looks better: epsilon escalates to 5% and the flow fluctuates without
// converging. Run with --attack to enable the MitM.
#include <cstdio>
#include <cstring>

#include "obs/report.hpp"
#include "pcc/experiment.hpp"

using namespace intox;
using namespace intox::pcc;

int main(int argc, char** argv) {
  obs::BenchSession session{argc, argv, "PCC-MITM"};
  bool attack = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--attack") == 0) attack = true;
  }

  PccExperimentConfig cfg;
  cfg.duration = sim::seconds(60);
  cfg.attack = attack;
  cfg.seed = 7;
  std::printf("PCC over a 20 Mbps bottleneck, 40 ms RTT — %s\n\n",
              attack ? "MitM ATTACK ACTIVE (pass nothing to disable)"
                     : "clean run (pass --attack to enable the MitM)");

  const auto r = run_pcc_experiment(cfg);

  std::printf("%8s  %10s\n", "time[s]", "rate[Mbps]");
  for (double t = 2; t <= 60; t += 2) {
    const double rate = r.rate.at(sim::seconds(t)) / 1e6;
    std::printf("%8.0f  %10.2f  |%-*s*\n", t, rate,
                static_cast<int>(rate * 1.5), "");
  }

  std::printf("\nsteady-state (last 20 s):\n");
  std::printf("  mean rate          %.2f Mbps\n", r.mean_rate_bps / 1e6);
  std::printf("  rate CV            %.2f%%\n", r.rate_cv * 100.0);
  std::printf("  oscillation amp.   +-%.2f%%\n", r.osc_amplitude * 100.0);
  std::printf("  experiments        %llu inconclusive / %llu decisions\n",
              static_cast<unsigned long long>(r.inconclusive),
              static_cast<unsigned long long>(r.decisions));
  if (attack) {
    std::printf("  attacker dropped   %llu of %llu packets (%.2f%%)\n",
                static_cast<unsigned long long>(r.attacker_dropped),
                static_cast<unsigned long long>(r.attacker_observed),
                100.0 * static_cast<double>(r.attacker_dropped) /
                    static_cast<double>(r.attacker_observed));
  }
  return 0;
}
