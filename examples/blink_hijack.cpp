// Example: the §3.1 Blink attack, narrated.
//
// A Blink-protected switch fast-reroutes the prefix 10.0.0.0/8 when half
// of its 64 monitored flows retransmit. An attacker controlling a small
// botnet opens always-active fake flows (no TCP handshake!) that emit
// duplicate sequence numbers. Watch the malicious share of the monitored
// sample grow until Blink "detects a failure" and hands the prefix to
// the attacker's next-hop.
//
// The narrated run is trial 0 of a seeded Monte-Carlo batch that is
// sharded across a ParallelRunner — the summary statistics are identical
// for any worker count.
//
// Usage: blink_hijack [bots] [--trials N] [--threads N]
//        (defaults: 105 bots, 8 trials, INTOX_THREADS/hardware workers)
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "blink/attacker.hpp"
#include "obs/report.hpp"
#include "sim/runner.hpp"

using namespace intox;
using namespace intox::blink;

int main(int argc, char** argv) {
  // Env-only observability session (INTOX_METRICS / INTOX_TRACE): this
  // example treats any bare argument as the bots count, so it cannot
  // safely claim --metrics-out and friends.
  obs::BenchSession session{0, nullptr, "BLINK-HIJACK"};
  std::size_t bots = 105, trials = 8, threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
      trials = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (argv[i][0] != '-') {
      bots = static_cast<std::size_t>(std::atoi(argv[i]));
    }
  }
  if (trials == 0) trials = 1;

  // Plan the attack with the closed-form model first, like an attacker
  // sizing a botnet rental.
  BlinkConfig blink_cfg;
  const AttackPlan plan = plan_attack(blink_cfg, /*legit_flows=*/2000,
                                      /*tr_seconds=*/8.37,
                                      /*confidence=*/0.95);
  std::printf("attack planner: >=%zu always-active flows give 95%% success\n"
              "  (q_m = %.2f%%, expected majority after %.0f s)\n\n",
              plan.malicious_flows, plan.qm * 100.0,
              plan.expected_majority_time_s);

  sim::ParallelRunner runner{threads};
  std::printf("launching %zu malicious flows against 2000 legitimate ones "
              "(t_R = 8.37 s), %zu seeded trials on %zu worker(s)...\n\n",
              bots, trials, runner.threads());
  const auto results = runner.map(trials, [bots](std::size_t trial) {
    Fig2Config cfg;
    cfg.malicious_flows = bots;
    cfg.trace.horizon = sim::seconds(300);
    cfg.seed = 42 + trial;
    return run_fig2_experiment(cfg);
  });

  // Narrate trial 0, the run the original walk-through showed.
  const Fig2Result& result = results.front();
  std::printf("%8s  %22s\n", "time[s]", "malicious cells (of 64)");
  for (int t = 0; t <= 300; t += 30) {
    const int cells =
        static_cast<int>(result.malicious_sampled.at(sim::seconds(t)));
    std::printf("%8d  [%-32.*s] %d\n", t, cells / 2,
                "################################", cells);
  }

  if (result.time_to_majority_seconds >= 0) {
    std::printf("\nmajority captured after %.0f s\n",
                result.time_to_majority_seconds);
  } else {
    std::printf("\nmajority NOT captured within the horizon\n");
  }
  if (!result.reroutes.empty()) {
    std::printf("Blink rerouted 10.0.0.0/8 at %.1f s — traffic now flows via "
                "the attacker's next-hop.\n",
                sim::to_seconds(result.reroutes.front().when));
  } else {
    std::printf("no reroute was triggered.\n");
  }

  // Fold the whole batch, in trial order, into the summary.
  sim::RunningStats majority_times;
  std::size_t hijacked = 0;
  for (const Fig2Result& r : results) {
    if (r.time_to_majority_seconds >= 0) {
      majority_times.add(r.time_to_majority_seconds);
    }
    hijacked += !r.reroutes.empty();
  }
  std::printf("\nacross %zu trials: %zu hijacks; majority after %.0f s mean "
              "(min %.0f, max %.0f)\n",
              trials, hijacked, majority_times.mean(), majority_times.min(),
              majority_times.max());
  obs::SweepPerf perf;
  perf.name = "BLINK-HIJACK";
  perf.trials = runner.last_report().trials;
  perf.threads = runner.last_report().threads;
  perf.wall_seconds = runner.last_report().wall_seconds;
  perf.shard_seconds = runner.last_report().shard_seconds;
  obs::emit_sweep_perf(perf);
  return 0;
}
