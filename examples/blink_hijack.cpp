// Example: the §3.1 Blink attack, narrated.
//
// A Blink-protected switch fast-reroutes the prefix 10.0.0.0/8 when half
// of its 64 monitored flows retransmit. An attacker controlling a small
// botnet opens always-active fake flows (no TCP handshake!) that emit
// duplicate sequence numbers. Watch the malicious share of the monitored
// sample grow until Blink "detects a failure" and hands the prefix to
// the attacker's next-hop.
//
// Usage: blink_hijack [bots]          (default 105)
#include <cstdio>
#include <cstdlib>

#include "blink/attacker.hpp"

using namespace intox;
using namespace intox::blink;

int main(int argc, char** argv) {
  const std::size_t bots =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 105;

  // Plan the attack with the closed-form model first, like an attacker
  // sizing a botnet rental.
  BlinkConfig blink_cfg;
  const AttackPlan plan = plan_attack(blink_cfg, /*legit_flows=*/2000,
                                      /*tr_seconds=*/8.37,
                                      /*confidence=*/0.95);
  std::printf("attack planner: >=%zu always-active flows give 95%% success\n"
              "  (q_m = %.2f%%, expected majority after %.0f s)\n\n",
              plan.malicious_flows, plan.qm * 100.0,
              plan.expected_majority_time_s);

  Fig2Config cfg;
  cfg.malicious_flows = bots;
  cfg.trace.horizon = sim::seconds(300);
  cfg.seed = 42;
  std::printf("launching %zu malicious flows against 2000 legitimate ones "
              "(t_R = 8.37 s)...\n\n", bots);
  const Fig2Result result = run_fig2_experiment(cfg);

  std::printf("%8s  %22s\n", "time[s]", "malicious cells (of 64)");
  for (int t = 0; t <= 300; t += 30) {
    const int cells = static_cast<int>(result.malicious_sampled.at(sim::seconds(t)));
    std::printf("%8d  [%-32.*s] %d\n", t, cells / 2,
                "################################", cells);
  }

  if (result.time_to_majority_seconds >= 0) {
    std::printf("\nmajority captured after %.0f s\n",
                result.time_to_majority_seconds);
  } else {
    std::printf("\nmajority NOT captured within the horizon\n");
  }
  if (!result.reroutes.empty()) {
    std::printf("Blink rerouted 10.0.0.0/8 at %.1f s — traffic now flows via "
                "the attacker's next-hop.\n",
                sim::to_seconds(result.reroutes.front().when));
  } else {
    std::printf("no reroute was triggered.\n");
  }
  return 0;
}
