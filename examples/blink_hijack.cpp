// Thin compatibility shim: this walk-through now lives in the scenario
// registry as "blink.hijack" (see src/scenario/). The binary keeps its
// CLI (`blink_hijack [bots] [--trials N] [--threads N]`) so existing
// invocations stay valid; it forwards through the unified intox driver.
#include "scenario/shim.hpp"

int main(int argc, char** argv) {
  intox::scenario::LegacySpec spec;
  spec.value_flags = {{"--trials", "trials"}};
  spec.positional_knob = "bots";
  return intox::scenario::run_legacy_shim("blink.hijack", argc, argv, spec);
}
