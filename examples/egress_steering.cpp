// Example: §3.2 egress-selection steering (Espresso / Edge Fabric class).
//
// An edge PoP reaches a destination over three peering paths (10 / 14 /
// 25 ms) and picks the best from *passive* measurements of production
// traffic. A MitM who wants traffic on the 25 ms path (say, one she can
// tap) drops a fraction of the flows on the two good paths — the edge
// obliges and migrates everyone. Run with --attack to enable her.
#include <cstdio>
#include <cstring>

#include "egress/attack.hpp"
#include "obs/report.hpp"

using namespace intox;
using namespace intox::egress;

int main(int argc, char** argv) {
  obs::BenchSession session{argc, argv, "EGRESS-STEER"};
  bool attack = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--attack") == 0) attack = true;
  }

  EgressExperimentConfig cfg;
  cfg.attack = attack;
  std::printf("edge PoP with peering paths: 0 (10 ms), 1 (14 ms), "
              "2 (25 ms, ATTACKER-TAPPED)\n%s\n\n",
              attack ? "MitM degrading paths 0 and 1 from t = 10 s"
                     : "no attack (pass --attack to enable)");

  const auto r = run_egress_attack_experiment(cfg);

  std::printf("preferred path before: %zu\n", r.preferred_before);
  std::printf("preferred path after:  %zu%s\n", r.preferred_after,
              r.preferred_after == cfg.attacker.attacker_path
                  ? "  <- the attacker's path"
                  : "");
  std::printf("mean user RTT:         %.1f ms -> %.1f ms\n",
              r.mean_rtt_before_ms, r.mean_rtt_after_ms);
  std::printf("time on attacker path: %.0f%% of post-warmup epochs\n",
              r.attacker_path_fraction * 100.0);
  std::printf("packets dropped:       %llu of %llu (%.1f%%)\n",
              static_cast<unsigned long long>(r.attacker_dropped),
              static_cast<unsigned long long>(r.packets_total),
              r.packets_total
                  ? 100.0 * static_cast<double>(r.attacker_dropped) /
                        static_cast<double>(r.packets_total)
                  : 0.0);
  if (attack) {
    std::printf("\nthe edge's *passive* measurements are its weakness: "
                "whoever shapes the\nflows shapes the measurements, and "
                "the best honest paths lose by forfeit.\n");
  }
  return 0;
}
