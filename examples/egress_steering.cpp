// Thin compatibility shim: this walk-through now lives in the scenario
// registry as "egress.steering" (see src/scenario/). The binary keeps
// its CLI (`--attack`) so existing invocations stay valid; it forwards
// through the unified intox driver.
#include "scenario/shim.hpp"

int main(int argc, char** argv) {
  intox::scenario::LegacySpec spec;
  spec.switch_flags = {{"--attack", "attack"}};
  return intox::scenario::run_legacy_shim("egress.steering", argc, argv,
                                          spec);
}
