// NETHIDE — §4.3: "Since there is no authentication of these ICMP
// replies, any attacker who can manipulate them can control the path
// that traceroute displays ... the exact same technique [NetHide] could
// be used by malicious operators to present wrong information about the
// topology."
//
// Quantifies the spectrum honest -> NetHide (defensive, minimal lying)
// -> malicious decoy (maximal lying) with the accuracy / utility /
// flow-density metrics.
#include "bench_util.hpp"
#include "nethide/obfuscate.hpp"

using namespace intox;
using namespace intox::nethide;

namespace {

Topology dumbbell() {
  Topology t{10};
  for (NodeId i = 0; i < 4; ++i) {
    for (NodeId j = i + 1; j < 4; ++j) t.add_link(i, j);
  }
  for (NodeId i = 5; i < 9; ++i) {
    for (NodeId j = i + 1; j < 9; ++j) t.add_link(i, j);
  }
  t.add_link(3, 4);
  t.add_link(4, 5);
  t.add_link(9, 0);
  t.add_link(2, 9);
  t.add_link(1, 9);
  t.add_link(9, 6);
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session session{argc, argv, "NETHIDE"};
  bench::header("NETHIDE", "topology presented to traceroute: honest, "
                           "obfuscated, maliciously faked");

  const Topology topo = dumbbell();
  const PathTable honest = PathTable::all_shortest_paths(topo);

  const auto defended = obfuscate(topo, ObfuscationConfig{});
  const auto faked = present_fake_topology(topo, Topology::ring(10));

  bench::row("%-14s %10s %10s %12s", "presentation", "accuracy", "utility",
             "max-density");
  bench::row("%-14s %10.3f %10.3f %12zu", "honest", 1.0, 1.0,
             max_flow_density(honest));
  bench::row("%-14s %10.3f %10.3f %12zu", "nethide", defended.accuracy,
             defended.utility, defended.presented_max_density);
  bench::row("%-14s %10.3f %10.3f %12zu", "malicious", faked.accuracy,
             faked.utility, faked.presented_max_density);

  bench::row("");
  bench::row("example traceroute 0 -> 7 under each presentation:");
  auto print_route = [&](const char* label, const PathTable& table) {
    auto hops = traceroute(topo, table, 0, 7);
    std::string line;
    for (const auto& h : hops) line += " " + net::to_string(h.from);
    bench::row("  %-10s%s", label, line.c_str());
  };
  print_route("honest", honest);
  print_route("nethide", defended.presented);
  print_route("malicious", faked.presented);

  // What a mapping prober concludes.
  const auto inferred_fake = infer_topology(topo, faked.presented);
  std::size_t phantom_links = 0;
  for (const Edge& e : inferred_fake.links()) {
    phantom_links += !topo.has_link(e.a, e.b);
  }

  bench::row("");
  bench::row("prober's map under the malicious decoy: %zu links, %zu phantom",
             inferred_fake.link_count(), phantom_links);

  bench::claim(defended.presented_max_density < defended.physical_max_density,
               "NetHide hides the bottleneck (max apparent flow density "
               "drops) — the defensive use");
  bench::claim(defended.accuracy > 0.8 && defended.utility > 0.5,
               "NetHide keeps traceroute mostly truthful (minimal lying)");
  bench::claim(faked.accuracy < defended.accuracy - 0.1,
               "the malicious operator's decoy is far less faithful — same "
               "mechanism, opposite intent");
  bench::claim(phantom_links > 0,
               "the prober's inferred map contains links that do not exist");
  return 0;
}
