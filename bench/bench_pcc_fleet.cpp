// PCC-FLEET — §4.2: "by doing this across a large number of PCC flows
// towards the same destination, the attacker can create sizable traffic
// fluctuations at the destination, causing challenges with managing this
// variable traffic."
//
// Every (fleet size, clean/attacked) cell of the table is an independent
// seeded experiment, so the sweep fans out across the runner's workers
// (--threads / INTOX_THREADS) and folds back in fleet order.
#include <vector>

#include "bench_util.hpp"
#include "pcc/experiment.hpp"

using namespace intox;
using namespace intox::pcc;

namespace {

PccExperimentConfig fleet_config(std::size_t flows, bool attack) {
  PccExperimentConfig cfg;
  cfg.flows = flows;
  cfg.bottleneck_bps = 10e6 * static_cast<double>(flows);
  cfg.queue_limit_bytes = 64 * 1024 * static_cast<std::uint32_t>(flows);
  cfg.red_max_bytes = cfg.queue_limit_bytes;
  cfg.duration = sim::seconds(50);
  cfg.seed = 9;
  cfg.attack = attack;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session session{argc, argv, "PCC-FLEET"};
  sim::ParallelRunner runner{session.threads()};

  bench::header("PCC-FLEET",
                "aggregate traffic fluctuation at a victim destination");

  const std::vector<std::size_t> fleet_sizes{1, 4, 16, 48};
  // Trials 2k / 2k+1 are fleet k clean / attacked.
  std::vector<PccExperimentResult> results;
  {
    bench::Phase phase{"PCC-FLEET.sweep", "bench"};
    results = runner.map(2 * fleet_sizes.size(), [&](std::size_t i) {
      return run_pcc_experiment(fleet_config(fleet_sizes[i / 2], i % 2 == 1));
    });
  }
  bench::perf("PCC-FLEET", runner.last_report());

  bench::row("%6s | %14s %14s | %14s %14s", "flows", "clean agg[Mb]",
             "clean agg-cv", "attacked[Mb]", "attacked-cv");
  bool cv_grows = true;
  double last_clean_cv = 0.0, last_attacked_cv = 0.0;
  for (std::size_t k = 0; k < fleet_sizes.size(); ++k) {
    const std::size_t flows = fleet_sizes[k];
    const PccExperimentResult& clean = results[2 * k];
    const PccExperimentResult& attacked = results[2 * k + 1];
    const sim::Duration duration = fleet_config(flows, false).duration;

    sim::RunningStats clean_late, attacked_late;
    for (const auto& [t, v] : clean.delivered_bps.points()) {
      if (t >= duration * 2 / 3) clean_late.add(v);
    }
    for (const auto& [t, v] : attacked.delivered_bps.points()) {
      if (t >= duration * 2 / 3) attacked_late.add(v);
    }
    bench::row("%6zu | %14.1f %13.2f%% | %14.1f %13.2f%%", flows,
               clean_late.mean() / 1e6, clean.delivered_cv * 100.0,
               attacked_late.mean() / 1e6, attacked.delivered_cv * 100.0);
    if (flows >= 16) cv_grows &= attacked.delivered_cv > clean.delivered_cv;
    last_clean_cv = clean.delivered_cv;
    last_attacked_cv = attacked.delivered_cv;
  }

  bench::claim(cv_grows,
               "at fleet scale the attacked aggregate fluctuates more than "
               "the clean one");
  bench::claim(last_attacked_cv > 1.2 * last_clean_cv,
               "destination-side arrival variability grows by >20% under "
               "attack at 48 flows");
  bench::note("statistical multiplexing normally smooths aggregates; the "
              "synchronized per-flow oscillations re-introduce variance at "
              "the destination.");
  return 0;
}
