// PCC-FLEET — §4.2: "by doing this across a large number of PCC flows
// towards the same destination, the attacker can create sizable traffic
// fluctuations at the destination, causing challenges with managing this
// variable traffic."
#include "bench_util.hpp"
#include "pcc/experiment.hpp"

using namespace intox;
using namespace intox::pcc;

int main() {
  bench::header("PCC-FLEET",
                "aggregate traffic fluctuation at a victim destination");

  bench::row("%6s | %14s %14s | %14s %14s", "flows", "clean agg[Mb]",
             "clean agg-cv", "attacked[Mb]", "attacked-cv");
  bool cv_grows = true;
  double last_clean_cv = 0.0, last_attacked_cv = 0.0;
  for (std::size_t flows : {1u, 4u, 16u, 48u}) {
    PccExperimentConfig cfg;
    cfg.flows = flows;
    cfg.bottleneck_bps = 10e6 * static_cast<double>(flows);
    cfg.queue_limit_bytes = 64 * 1024 * static_cast<std::uint32_t>(flows);
    cfg.red_max_bytes = cfg.queue_limit_bytes;
    cfg.duration = sim::seconds(50);
    cfg.seed = 9;
    const auto clean = run_pcc_experiment(cfg);
    cfg.attack = true;
    const auto attacked = run_pcc_experiment(cfg);

    sim::RunningStats clean_late, attacked_late;
    for (const auto& [t, v] : clean.delivered_bps.points()) {
      if (t >= cfg.duration * 2 / 3) clean_late.add(v);
    }
    for (const auto& [t, v] : attacked.delivered_bps.points()) {
      if (t >= cfg.duration * 2 / 3) attacked_late.add(v);
    }
    bench::row("%6zu | %14.1f %13.2f%% | %14.1f %13.2f%%", flows,
               clean_late.mean() / 1e6, clean.delivered_cv * 100.0,
               attacked_late.mean() / 1e6, attacked.delivered_cv * 100.0);
    if (flows >= 16) cv_grows &= attacked.delivered_cv > clean.delivered_cv;
    last_clean_cv = clean.delivered_cv;
    last_attacked_cv = attacked.delivered_cv;
  }

  bench::claim(cv_grows,
               "at fleet scale the attacked aggregate fluctuates more than "
               "the clean one");
  bench::claim(last_attacked_cv > 1.2 * last_clean_cv,
               "destination-side arrival variability grows by >20% under "
               "attack at 48 flows");
  bench::note("statistical multiplexing normally smooths aggregates; the "
              "synchronized per-flow oscillations re-introduce variance at "
              "the destination.");
  return 0;
}
