// Thin compatibility shim: this experiment now lives in the scenario
// registry as "blink.fig2" (see src/scenario/). The binary keeps its
// name and CLI (`--runs N`) so existing invocations and goldens stay
// valid; it forwards through the unified intox driver.
#include "scenario/shim.hpp"

int main(int argc, char** argv) {
  intox::scenario::LegacySpec spec;
  spec.value_flags = {{"--runs", "runs"}};
  return intox::scenario::run_legacy_shim("blink.fig2", argc, argv, spec);
}
