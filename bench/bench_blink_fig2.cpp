// FIG2 — reproduces Figure 2 of the paper:
//   "Malicious flows sampled by Blink over time (tR = 8.37 s,
//    qm = 0.0525). On average, it takes 172 s until the sample contains
//    enough (i.e., 32) malicious flows."
//
// Emits the calculated mean / 5th / 95th percentile curves (the paper's
// closed-form binomial model) and packet-level simulation runs through a
// real BlinkNode, exactly like the figure overlays 50 mininet runs.
//
// Run with --runs N to change the simulation count (default 12 keeps the
// default bench sweep fast; the figure used 50) and --threads N to pick
// the worker count (default: INTOX_THREADS, then hardware concurrency).
// The printed statistics are byte-identical for any thread count; only
// the perf line on stderr varies.
#include <cstdlib>
#include <cstring>

#include "bench_util.hpp"
#include "blink/attacker.hpp"
#include "blink/cell_process.hpp"

using namespace intox;
using namespace intox::blink;

int main(int argc, char** argv) {
  bench::Session session{argc, argv, "FIG2"};
  std::size_t runs = 12;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--runs") == 0) {
      runs = static_cast<std::size_t>(std::atoi(argv[i + 1]));
    }
  }
  sim::ParallelRunner runner{session.threads()};

  bench::header("FIG2", "malicious flows in Blink's sample over time");
  const double tr = 8.37, qm = 0.0525;
  const std::size_t n = 64, majority = 32;

  // Packet-level simulations (2000 legit + 105 malicious flows each),
  // sharded across the runner. Each trial is seeded by its index alone
  // and the aggregates are folded in trial order below, so the output
  // does not depend on scheduling.
  std::vector<Fig2Result> trials;
  {
    bench::Phase phase{"FIG2.simulate", "bench"};
    trials = runner.map(runs, [](std::size_t r) {
      Fig2Config cfg;
      cfg.seed = 1000 + r;
      return run_fig2_experiment(cfg);
    });
  }
  bench::perf("FIG2", runner.last_report());

  sim::SeriesStats sampled{0, sim::seconds(500), sim::seconds(25)};
  sim::RunningStats majority_times, measured_tr;
  std::size_t reroutes = 0;
  for (const Fig2Result& result : trials) {
    sampled.add(result.malicious_sampled);
    if (result.time_to_majority_seconds >= 0) {
      majority_times.add(result.time_to_majority_seconds);
    }
    measured_tr.add(result.measured_tr_seconds);
    reroutes += !result.reroutes.empty();
  }

  bench::row("%6s  %8s  %6s  %6s  | packet-level sim (mean of %zu runs, "
             "min, max)",
             "t[s]", "calc-avg", "p5", "p95", runs);
  for (std::size_t i = 0; i < sampled.points(); ++i) {
    const int t = static_cast<int>(i) * 25;
    const double p = cell_malicious_probability(qm, t, tr);
    const double mean = static_cast<double>(n) * p;
    const auto p5 = binomial_quantile(n, p, 0.05);
    const auto p95 = binomial_quantile(n, p, 0.95);
    const sim::RunningStats& at_t = sampled.at(i);
    bench::row("%6d  %8.1f  %6zu  %6zu  | %8.1f  %6.0f  %6.0f", t, mean, p5,
               p95, at_t.mean(), at_t.min(), at_t.max());
  }

  const double t_mean32 = time_to_expected_count(n, qm, tr, 32.0);
  bench::row("");
  bench::row("closed-form mean crosses %zu at           %.0f s", majority,
             t_mean32);
  bench::row("packet-level majority reached at (mean)  %.0f s  [paper: 172 s]",
             majority_times.mean());
  bench::row("measured sampled-residency t_R           %.2f s  [target 8.37 s]",
             measured_tr.mean());
  bench::row("runs reaching majority                   %zu/%zu",
             majority_times.count(), runs);
  bench::row("runs triggering a bogus reroute          %zu/%zu", reroutes,
             runs);

  bench::claim(majority_times.count() == runs,
               "attack reaches a malicious majority in every run");
  bench::claim(majority_times.mean() > 100 && majority_times.mean() < 260,
               "time-to-majority lands in the paper's 100-260 s regime "
               "(~172 s)");
  bench::claim(std::abs(measured_tr.mean() - 8.37) < 1.5,
               "synthetic trace reproduces the target t_R = 8.37 s");
  bench::claim(reroutes == runs, "every run ends with Blink hijacked");
  bench::note("closed form slightly leads the packet-level runs: only ~52 of "
              "64 cells are reachable by 105 hashed flows (capture ceiling).");
  return 0;
}
