// PCC-OSC — §4.2: "the attacker can cause PCC flows to fluctuate by
// ±5%, without allowing them to converge to the right rate. ... Not only
// is PCC's logic neutralized in this setting, it is effectively a tool
// for the attacker to cause disruption."
//
// Compares a clean PCC flow against the same flow under the
// utility-equalizing MitM (omniscient and shaper variants) and a Reno
// baseline, then ablates epsilon_max (a DESIGN.md knob). Each scenario
// is an independent seeded experiment, so the whole table is one
// parallel sweep (--threads / INTOX_THREADS); results print in scenario
// order regardless of which worker finishes first.
#include <vector>

#include "bench_util.hpp"
#include "pcc/experiment.hpp"

using namespace intox;
using namespace intox::pcc;

namespace {

PccExperimentConfig base() {
  PccExperimentConfig cfg;
  cfg.duration = sim::seconds(90);
  cfg.seed = 4;
  return cfg;
}

void print(const char* label, const PccExperimentResult& r) {
  bench::row("%-22s %9.2f %8.2f%% %8.2f%% %8llu %8llu %9.2f%%", label,
             r.mean_rate_bps / 1e6, r.rate_cv * 100.0,
             r.osc_amplitude * 100.0,
             static_cast<unsigned long long>(r.inconclusive),
             static_cast<unsigned long long>(r.decisions),
             r.attacker_observed
                 ? 100.0 * static_cast<double>(r.attacker_dropped) /
                       static_cast<double>(r.attacker_observed)
                 : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session session{argc, argv, "PCC-OSC"};
  sim::ParallelRunner runner{session.threads()};

  bench::header("PCC-OSC",
                "PCC rate oscillation under a utility-equalizing MitM");
  bench::row("%-22s %9s %9s %9s %8s %8s %10s", "scenario", "rate[Mb]",
             "rate-cv", "amp", "inconcl", "decide", "drop-share");

  std::vector<std::pair<const char*, PccExperimentConfig>> scenarios;
  scenarios.emplace_back("pcc clean", base());
  {
    auto atk = base();
    atk.attack = true;
    scenarios.emplace_back("pcc + mitm(omnisc.)", atk);
    atk.mitm.mode = PccMitmConfig::Mode::kShaper;
    scenarios.emplace_back("pcc + mitm(shaper)", atk);
  }
  {
    auto reno = base();
    reno.kind = SenderKind::kReno;
    scenarios.emplace_back("reno clean", reno);
    reno.attack = true;
    scenarios.emplace_back("reno + mitm(omnisc.)", reno);
  }

  std::vector<PccExperimentResult> results;
  {
    bench::Phase phase{"PCC-OSC.scenarios", "bench"};
    results = runner.map(scenarios.size(), [&](std::size_t i) {
      return run_pcc_experiment(scenarios[i].second);
    });
  }
  bench::perf("PCC-OSC", runner.last_report());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    print(scenarios[i].first, results[i]);
  }

  const PccExperimentResult& clean = results[0];
  const PccExperimentResult& omniscient = results[1];

  bench::claim(clean.rate_cv < 0.08,
               "clean PCC converges (rate CV < 8% in steady state)");
  bench::claim(omniscient.rate_cv > 1.3 * clean.rate_cv &&
                   omniscient.osc_amplitude >= 0.05,
               "MitM-attacked PCC fluctuates at the +-5% scale without "
               "converging (paper's headline)");
  bench::claim(omniscient.mean_rate_bps < 0.85 * clean.mean_rate_bps,
               "attacked flow is pinned below its fair rate");
  bench::claim(static_cast<double>(omniscient.attacker_dropped) <
                   0.05 * static_cast<double>(omniscient.attacker_observed),
               "attacker tampers with <5% of packets");
  bench::claim(omniscient.inconclusive > clean.decisions / 2,
               "experiments are driven inconclusive (epsilon escalates)");

  // Ablation: epsilon_max — the oscillation amplitude the attacker gets
  // for free is exactly PCC's own experiment range.
  bench::row("");
  bench::row("ablation: epsilon_max under attack");
  const std::vector<double> emaxes{0.02, 0.05, 0.10};
  std::vector<PccExperimentResult> ablations;
  {
    bench::Phase phase{"PCC-OSC.ablation", "bench"};
    ablations = runner.map(emaxes.size(), [&](std::size_t i) {
      auto cfg = base();
      cfg.attack = true;
      cfg.pcc.epsilon_max = emaxes[i];
      return run_pcc_experiment(cfg);
    });
  }
  bench::perf("PCC-OSC-ABLATION", runner.last_report());
  for (std::size_t i = 0; i < emaxes.size(); ++i) {
    bench::row("  eps_max %.2f -> rate-cv %5.2f%%, amp %5.2f%%", emaxes[i],
               ablations[i].rate_cv * 100.0,
               ablations[i].osc_amplitude * 100.0);
  }
  bench::note("epsilon_max bounds the attacker-induced oscillation — the "
              "paper's own countermeasure suggestion (cf. bench_defenses).");
  return 0;
}
