// Microbenchmarks of the hot data-plane paths: flow hashing, LPM lookup,
// event-queue throughput, and packet (de)serialization. These are not
// paper experiments; they document that the substrate is fast enough for
// the packet-level reproductions to run at the scale the paper used.
#include <benchmark/benchmark.h>

#include "blink/flow_selector.hpp"
#include "obs/report.hpp"
#include "innet/classifier.hpp"
#include "net/lpm.hpp"
#include "net/packet.hpp"
#include "sim/event_queue.hpp"
#include "sim/link.hpp"
#include "sim/rng.hpp"
#include "sketch/flowradar.hpp"
#include "sppifo/sppifo.hpp"

namespace {

using namespace intox;

void BM_FlowHash(benchmark::State& state) {
  net::FiveTuple t{net::Ipv4Addr{10, 0, 0, 1}, net::Ipv4Addr{10, 0, 0, 2},
                   1234, 80, net::IpProto::kTcp};
  std::uint32_t sink = 0;
  for (auto _ : state) {
    t.src_port = static_cast<std::uint16_t>(t.src_port + 1);
    sink ^= net::flow_hash(t);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_FlowHash);

void BM_LpmLookup(benchmark::State& state) {
  net::LpmTable<std::uint32_t> table;
  sim::Rng rng{1};
  for (int i = 0; i < state.range(0); ++i) {
    const auto addr =
        static_cast<std::uint32_t>(rng.uniform_int(0, UINT32_MAX));
    table.insert(net::Prefix{net::Ipv4Addr{addr}, 24},
                 static_cast<std::uint32_t>(i % 16));
  }
  std::uint64_t sink = 0;
  sim::Rng probe{2};
  for (auto _ : state) {
    const net::Ipv4Addr a{
        static_cast<std::uint32_t>(probe.uniform_int(0, UINT32_MAX))};
    auto m = table.lookup(a);
    sink += m ? m->value : 0;
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_LpmLookup)->Arg(1000)->Arg(100000);

void BM_SchedulerChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler s;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      s.schedule_at(i, [&fired] { ++fired; });
    }
    s.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerChurn);

void BM_SchedulerSameInstantStorm(benchmark::State& state) {
  // Every event at the same timestamp — the binary heap's worst case
  // (every pop sifts through equal keys) and the timing wheel's best
  // (one bucket, drained head-first in FIFO order).
  for (auto _ : state) {
    sim::Scheduler s;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      s.schedule_at(1000, [&fired] { ++fired; });
    }
    s.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerSameInstantStorm);

void BM_SchedulerCancelHeavy(benchmark::State& state) {
  // Timer-style workload: half of everything scheduled is cancelled
  // before it fires. The wheel unlinks in O(1) and reuses the slab slot
  // immediately; the old heap tombstoned cancels and paid for them at
  // pop time.
  std::vector<sim::Scheduler::EventId> ids;
  ids.reserve(1000);
  for (auto _ : state) {
    sim::Scheduler s;
    ids.clear();
    for (int i = 0; i < 1000; ++i) {
      ids.push_back(s.schedule_at(i, [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) s.cancel(ids[i]);
    s.run();
    benchmark::DoNotOptimize(s.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerCancelHeavy);

void BM_SchedulerSteadyStateTimers(benchmark::State& state) {
  // A population of self-rescheduling periodic timers at staggered
  // phases — the scheduler shape of a running simulation (trafficgen
  // senders, MI timers, link deliveries).
  for (auto _ : state) {
    sim::Scheduler s;
    std::uint64_t fired = 0;
    std::vector<std::function<void()>> timers(64);
    for (int i = 0; i < 64; ++i) {
      timers[i] = [&s, &timers, &fired, i] {
        ++fired;
        if (fired < 1000) s.schedule_after(17 + i, timers[i]);
      };
      s.schedule_at(i, timers[i]);
    }
    s.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerSteadyStateTimers);

void BM_LinkDelivery(benchmark::State& state) {
  // Packet transmit -> serialize -> deliver through a Link: exercises
  // the in-flight packet slab and the small-buffer delivery closures.
  for (auto _ : state) {
    sim::Scheduler s;
    std::uint64_t delivered = 0;
    sim::LinkConfig cfg;
    cfg.rate_bps = 100e9;  // keep the queue from dropping
    cfg.queue_limit_bytes = 64 * 1024 * 1024;
    sim::Link link{s, cfg, [&delivered](net::Packet) { ++delivered; }};
    net::Packet p;
    p.src = net::Ipv4Addr{10, 0, 0, 1};
    p.dst = net::Ipv4Addr{10, 0, 0, 2};
    p.l4 = net::UdpHeader{1234, 80};
    p.payload_bytes = 512;
    for (int i = 0; i < 1000; ++i) {
      link.transmit(p);
      if ((i & 63) == 63) s.run();  // drain in bursts: bounded in-flight
    }
    s.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LinkDelivery);

void BM_BlinkObserve(benchmark::State& state) {
  // Blink's per-packet pipeline work (hash, cell access, retransmission
  // check) — the cost a switch pays per monitored-prefix packet.
  blink::FlowSelector selector{blink::BlinkConfig{}};
  sim::Rng rng{1};
  std::vector<net::FiveTuple> flows;
  for (int i = 0; i < 256; ++i) {
    flows.push_back({net::Ipv4Addr{static_cast<std::uint32_t>(
                         rng.uniform_int(1, UINT32_MAX))},
                     net::Ipv4Addr{10, 0, 0, 1},
                     static_cast<std::uint16_t>(rng.uniform_int(1024, 65535)),
                     80, net::IpProto::kTcp});
  }
  sim::Time now = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    now += sim::millis(1);
    ++i;
    auto v = selector.observe(flows[(i - 1) & 255], 0,
                              static_cast<std::uint32_t>(i & 7), false, now);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_BlinkObserve);

void BM_SpPifoEnqueueDequeue(benchmark::State& state) {
  sppifo::SpPifo sp{sppifo::SpPifoConfig{}};
  sim::Rng rng{2};
  std::uint64_t id = 0;
  for (auto _ : state) {
    sp.enqueue({static_cast<std::uint32_t>(rng.uniform_int(0, 99)), id++});
    auto p = sp.dequeue();
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_SpPifoEnqueueDequeue);

void BM_FlowRadarAddPacket(benchmark::State& state) {
  sketch::FlowRadar radar{sketch::FlowRadarConfig{}};
  std::uint64_t key = 0;
  for (auto _ : state) {
    radar.add_packet(net::mix64(key++ & 1023));
  }
}
BENCHMARK(BM_FlowRadarAddPacket);

void BM_InNetMlpInference(benchmark::State& state) {
  // The quantized forward pass a switch would execute per packet.
  const auto clf = innet::train_classifier(1, 500, 3);
  const auto data = innet::make_dataset(64, 9);
  std::size_t i = 0, sink = 0;
  for (auto _ : state) {
    sink += clf.deployed.predict(data[i++ & 127].x);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_InNetMlpInference);

void BM_PacketSerializeParse(benchmark::State& state) {
  net::Packet p;
  p.src = net::Ipv4Addr{10, 0, 0, 1};
  p.dst = net::Ipv4Addr{10, 0, 0, 2};
  p.l4 = net::TcpHeader{1234, 80, 42, 0};
  p.payload_bytes = 512;
  for (auto _ : state) {
    auto wire = net::serialize(p);
    auto back = net::parse(wire);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_PacketSerializeParse);

// Console reporter that additionally records every finished benchmark as
// a SweepPerf into the ambient BenchSession, so `--metrics-out` /
// INTOX_METRICS produces a BENCH_*.json the perf gate can diff against
// committed baselines.
class SessionReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const auto& run : runs) {
      if (run.error_occurred) continue;
      if (!run.aggregate_name.empty()) continue;  // mean/median/stddev rows
      obs::SweepPerf perf;
      perf.name = run.benchmark_name();
      perf.trials = static_cast<std::size_t>(run.iterations);
      perf.threads = 1;
      perf.wall_seconds = run.real_accumulated_time;
      obs::emit_sweep_perf(perf);
    }
  }
};

}  // namespace

// Expanded BENCHMARK_MAIN with an env-only observability session
// (INTOX_METRICS / INTOX_TRACE; no flag parsing, so google-benchmark's
// own --benchmark_* flags pass through untouched).
int main(int argc, char** argv) {
  intox::obs::BenchSession session{0, nullptr, "MICRO"};
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  SessionReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  return 0;
}
