// BLINK-E2E — the full §3.1 consequence: "the attacker can easily trick
// Blink into rerouting traffic, possibly onto a path that she controls",
// demonstrated over the packet-level switch pipeline. One Blink-enabled
// switch forwards a victim prefix to a primary next-hop; the backup
// next-hop is attacker-controlled. We measure how much legitimate
// traffic ends up on the attacker's path, and verify the §2 observation
// that the attack needs no TCP handshake with the victim.
#include "bench_util.hpp"
#include "blink/attacker.hpp"
#include "dataplane/switch.hpp"
#include "sim/network.hpp"

using namespace intox;

int main(int argc, char** argv) {
  bench::Session session{argc, argv, "BLINK-E2E"};
  bench::header("BLINK-E2E", "traffic hijack via fake retransmissions");

  sim::Scheduler sched;
  sim::Network net{sched};
  sim::Rng rng{2024};

  dataplane::CallbackNode source{"ingress", nullptr};
  dataplane::RoutedSwitch sw{"blink-switch", sched,
                             net::Ipv4Addr{192, 0, 2, 1}};
  dataplane::CallbackNode primary{"primary-nexthop", nullptr};
  dataplane::CallbackNode attacker_hop{"attacker-nexthop", nullptr};

  sim::LinkConfig fast;
  fast.rate_bps = 10e9;
  fast.prop_delay = sim::millis(1);
  net.connect(source, 0, sw, 0, fast);
  net.connect(sw, 1, primary, 0, fast);
  net.connect(sw, 2, attacker_hop, 0, fast);

  trafficgen::TraceConfig trace;  // 2000 flows, t_R = 8.37 s
  trace.horizon = sim::seconds(300);
  sw.add_route(net::Prefix{net::Ipv4Addr{10, 0, 0, 0}, 8}, 1);

  blink::BlinkNode node{blink::BlinkConfig{}};
  node.monitor_prefix(trace.victim_prefix, /*primary=*/1, /*backup=*/2);
  sw.add_processor(&node);

  std::uint64_t legit_to_primary = 0, legit_to_attacker = 0;
  primary.set_handler([&](net::Packet p, int) {
    legit_to_primary += !blink::is_malicious_tag(p.flow_tag);
  });
  attacker_hop.set_handler([&](net::Packet p, int) {
    legit_to_attacker += !blink::is_malicious_tag(p.flow_tag);
  });

  trafficgen::FlowPopulation pop{
      sched, rng.fork("drivers"),
      [&](net::Packet p) { source.inject(0, std::move(p)); }};
  {
    sim::Rng trng = rng.fork("trace");
    for (const auto& f : trafficgen::synthesize_trace(trace, trng)) {
      pop.add_legit(f);
    }
  }
  {
    sim::Rng brng = rng.fork("bots");
    trafficgen::MaliciousFlowDriver::Options opts;
    opts.send_period = trace.pkt_interval;
    for (const auto& f : trafficgen::synthesize_malicious_flows(
             trace, 105, 0, brng, blink::kMaliciousTagBase)) {
      pop.add_malicious(f, opts);
    }
  }

  pop.start_all();
  sched.run_until(trace.horizon);
  pop.stop_all();

  const auto& reroutes = node.reroutes();
  bench::row("reroute events:        %zu", reroutes.size());
  if (!reroutes.empty()) {
    bench::row("hijack at:             %.1f s (retransmitting cells: %zu)",
               sim::to_seconds(reroutes[0].when),
               reroutes[0].retransmitting_cells);
  }
  bench::row("legit pkts to primary: %llu",
             static_cast<unsigned long long>(legit_to_primary));
  bench::row("legit pkts hijacked:   %llu",
             static_cast<unsigned long long>(legit_to_attacker));
  const double hijacked_share =
      static_cast<double>(legit_to_attacker) /
      static_cast<double>(legit_to_primary + legit_to_attacker);
  bench::row("hijacked share:        %.1f%% of legitimate traffic",
             hijacked_share * 100.0);

  bench::claim(!reroutes.empty(), "fake retransmissions trigger a reroute");
  bench::claim(legit_to_attacker > 0,
               "legitimate traffic flows through the attacker's next-hop");
  bench::claim(hijacked_share > 0.2,
               "a large share of the remaining horizon's traffic is hijacked");
  bench::note("no TCP handshake was ever performed: malicious drivers emit "
              "raw duplicate segments only (cf. §3.1).");
  return 0;
}
