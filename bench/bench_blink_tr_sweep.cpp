// BLINK-TR — the §3.1 sensitivity claims:
//   * "With longer tR, the attack is harder, i.e., requires higher qm."
//   * "for half of [the top-20 prefixes] the average time a flow remains
//      sampled is 10 s (the median is ~5 s)" — i.e. realistic t_R values
//      sit squarely in the attackable regime.
//
// Sweeps t_R x q_m over the closed-form model, cross-checks a column
// against the cell-process Monte-Carlo (sharded over --threads workers;
// statistics are thread-count-invariant), and ablates Blink's design
// parameters (cell count, reset period) as DESIGN.md calls out.
#include <cmath>

#include "bench_util.hpp"
#include "blink/attacker.hpp"
#include "blink/cell_process.hpp"

using namespace intox;
using namespace intox::blink;

int main(int argc, char** argv) {
  bench::Session session{argc, argv, "BLINK-TR"};
  sim::ParallelRunner runner{session.threads()};
  bench::header("BLINK-TR",
                "attack feasibility vs sampled-flow residency t_R");
  const std::size_t n = 64, majority = 32;
  const double budget = 510.0;

  // Part 1: minimum q_m for 95%-confident majority within one reset.
  bench::row("%8s  %12s  %16s", "t_R[s]", "min q_m", "botnet vs 2000 flows");
  double prev_qm = 0.0;
  bool monotone = true;
  for (double tr : {2.0, 5.0, 8.37, 10.0, 15.0, 20.0, 30.0, 40.0}) {
    const double qm = min_qm_for_success(n, budget, tr, majority, 0.95);
    const auto bots = static_cast<std::size_t>(
        std::ceil(2000.0 * qm / (1.0 - qm)));
    bench::row("%8.2f  %11.4f%%  %13zu hosts", tr, qm * 100.0, bots);
    monotone &= qm > prev_qm;
    prev_qm = qm;
  }
  bench::claim(monotone, "longer t_R requires strictly higher q_m");

  const double qm_median = min_qm_for_success(n, budget, 5.0, majority, 0.95);
  const double qm_mean = min_qm_for_success(n, budget, 10.0, majority, 0.95);
  bench::claim(qm_median < 0.05 && qm_mean < 0.08,
               "at the CAIDA-like t_R of 5-10 s, <8% malicious traffic "
               "suffices (paper: 5.25% at 8.37 s)");

  // Part 2: cross-check closed form vs Monte-Carlo at q_m = 5.25%.
  bench::row("");
  bench::row("%8s  %14s  %14s", "t_R[s]", "theory P[win]", "monte-carlo");
  bool agree = true;
  sim::Rng rng{7};
  sim::RunReport mc_perf;
  for (double tr : {5.0, 8.37, 15.0, 30.0}) {
    const double theory =
        attack_success_probability(n, 0.0525, budget, tr, majority);
    CellProcessConfig cfg;
    cfg.tr_seconds = tr;
    sim::Rng sub = rng.fork(static_cast<std::uint64_t>(tr * 100));
    const double mc = empirical_success_rate(cfg, majority, 400, sub, runner);
    mc_perf.trials += runner.last_report().trials;
    mc_perf.threads = runner.last_report().threads;
    mc_perf.wall_seconds += runner.last_report().wall_seconds;
    bench::row("%8.2f  %13.3f  %13.3f", tr, theory, mc);
    agree &= std::abs(theory - mc) < 0.08;
  }
  bench::perf("BLINK-TR-MC", mc_perf);
  bench::claim(agree, "Monte-Carlo matches the closed form within 0.08");

  // Part 3: ablations of Blink's own parameters (DESIGN.md §6).
  bench::row("");
  bench::row("ablation: cells n (majority = n/2), t_R = 8.37 s, qm = 5.25%%");
  for (std::size_t cells : {16u, 32u, 64u, 128u, 256u}) {
    const double p =
        attack_success_probability(cells, 0.0525, budget, 8.37, cells / 2);
    bench::row("  n = %4zu   P[attack succeeds] = %.4f", cells, p);
  }
  bench::note("larger samples narrow the binomial spread around the same "
              "mean: cell count barely defends");

  bench::row("ablation: reset period t_B (attacker's time budget)");
  bool budget_helps = true;
  double prev = 1.0;
  for (double tb : {510.0, 255.0, 127.0, 60.0, 30.0}) {
    const double p = attack_success_probability(n, 0.0525, tb, 8.37, majority);
    bench::row("  t_B = %4.0f s   P[success] = %.4f", tb, p);
    budget_helps &= p <= prev + 1e-12;
    prev = p;
  }
  bench::claim(budget_helps,
               "shorter reset periods shrink the attack window (defense "
               "lever, at the cost of re-learning the sample)");
  return 0;
}
