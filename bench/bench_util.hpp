// Shared console-table helpers for the reproduction benches. Each bench
// prints (a) the paper artifact it regenerates, (b) the series/rows, and
// (c) a PASS/CHECK verdict on the qualitative claim, so `for b in
// build/bench/*; do $b; done` reads as an experiment report.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/runner.hpp"

namespace intox::bench {

/// Parses `--threads N` (0 if absent, deferring to INTOX_THREADS and then
/// hardware concurrency — see sim::resolve_threads).
inline std::size_t threads_from_args(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      const int v = std::atoi(argv[i + 1]);
      if (v > 0) return static_cast<std::size_t>(v);
    }
  }
  return 0;
}

/// Per-sweep perf record (wall clock + throughput), one JSON line. Emitted
/// on stderr so stdout — the statistics — stays byte-identical across
/// thread counts; only this line is allowed to vary.
inline void perf(const char* sweep, const sim::RunReport& r) {
  std::fprintf(stderr,
               "{\"sweep\":\"%s\",\"trials\":%zu,\"threads\":%zu,"
               "\"wall_s\":%.3f,\"trials_per_s\":%.1f}\n",
               sweep, r.trials, r.threads, r.wall_seconds,
               r.trials_per_second());
}

inline void header(const char* exp_id, const char* what) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", exp_id, what);
  std::printf("================================================================\n");
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

inline void claim(bool ok, const char* text) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "CHECK", text);
}

inline void note(const char* text) { std::printf("  note: %s\n", text); }

}  // namespace intox::bench
