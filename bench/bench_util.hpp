// Shared console-table helpers for the reproduction benches. Each bench
// prints (a) the paper artifact it regenerates, (b) the series/rows, and
// (c) a PASS/CHECK verdict on the qualitative claim, so `for b in
// build/bench/*; do $b; done` reads as an experiment report.
//
// Observability: every bench opens a bench::Session naming its family.
// The session routes --threads / --metrics-out / --trace-out (and the
// INTOX_METRICS / INTOX_TRACE environment variables), and at exit writes
// the BENCH_<family>.json run report: per-sweep perf, the full metrics
// registry, and the invariant counters. Everything machine-readable goes
// to stderr or files — stdout stays byte-identical across --threads.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "sim/runner.hpp"

namespace intox::bench {

/// The per-bench observability scope; construct one at the top of main.
using Session = obs::BenchSession;
/// RAII trace span for a bench phase ("FIG2.simulate", ...).
using Phase = obs::TraceSpan;

/// Strictly parses `--threads N` (0 if absent or explicitly 0, deferring
/// to INTOX_THREADS and then hardware concurrency — see
/// sim::resolve_threads). A malformed or negative value prints an error
/// on stderr and exits with status 2; it must never silently fall
/// through to the default and taint a perf comparison.
inline std::size_t threads_from_args(int argc, char** argv) {
  return obs::parse_threads_arg(argc, argv);
}

/// Per-sweep perf record (wall clock + throughput). Emits the legacy
/// one-line JSON on stderr — kept, with proper escaping, for transition
/// compatibility; stdout stays reserved for the statistics — and records
/// the sweep (including per-shard timing) into the current Session's
/// run report.
inline void perf(const char* sweep, const sim::RunReport& r) {
  obs::SweepPerf record;
  record.name = sweep;
  record.trials = r.trials;
  record.threads = r.threads;
  record.wall_seconds = r.wall_seconds;
  record.shard_seconds = r.shard_seconds;
  obs::emit_sweep_perf(record);
}

inline void header(const char* exp_id, const char* what) {
  std::printf("\n================================================"
              "================\n");
  std::printf("%s — %s\n", exp_id, what);
  std::printf("================================================"
              "================\n");
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

inline void claim(bool ok, const char* text) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "CHECK", text);
}

inline void note(const char* text) { std::printf("  note: %s\n", text); }

}  // namespace intox::bench
