// Shared console-table helpers for the reproduction benches. Each bench
// prints (a) the paper artifact it regenerates, (b) the series/rows, and
// (c) a PASS/CHECK verdict on the qualitative claim, so `for b in
// build/bench/*; do $b; done` reads as an experiment report.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace intox::bench {

inline void header(const char* exp_id, const char* what) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", exp_id, what);
  std::printf("================================================================\n");
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

inline void claim(bool ok, const char* text) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "CHECK", text);
}

inline void note(const char* text) { std::printf("  note: %s\n", text); }

}  // namespace intox::bench
