// Thin compatibility shim: this experiment now lives in the scenario
// registry as "pytheas.poison" (see src/scenario/). The binary keeps its
// name and CLI so existing invocations and goldens stay valid; it
// forwards through the unified intox driver.
#include "scenario/shim.hpp"

int main(int argc, char** argv) {
  return intox::scenario::run_legacy_shim("pytheas.poison", argc, argv);
}
