// PYTH-QOE — §4.1: "if multiple clients within a group report
// manipulated QoE measurements, this can drive decisions for other
// clients ... such that the system lowers video quality for all clients
// in the group."
//
// Sweeps botnet size x report amplification and reports the legitimate
// clients' QoE before/after, plus the ablations DESIGN.md calls out
// (UCB discount, group size). Every grid point is an independent seeded
// experiment, so each sweep fans out across the runner's workers
// (--threads / INTOX_THREADS) and prints in grid order.
#include <vector>

#include "bench_util.hpp"
#include "pytheas/experiment.hpp"

using namespace intox;
using namespace intox::pytheas;

int main(int argc, char** argv) {
  bench::Session session{argc, argv, "PYTH-QOE"};
  sim::ParallelRunner runner{session.threads()};

  bench::header("PYTH-QOE", "group QoE poisoning by lying clients");

  std::vector<std::pair<std::size_t, std::size_t>> grid;  // (bots, amp)
  for (std::size_t bots : {0u, 10u, 20u, 40u, 60u}) {
    for (std::size_t amp : {1u, 3u, 12u}) {
      if (bots == 0 && amp != 1) continue;
      grid.emplace_back(bots, amp);
    }
  }
  grid.emplace_back(12, 12);  // the amplification-substitutes claim

  const auto grid_results = runner.map(grid.size(), [&](std::size_t i) {
    PoisonConfig cfg;
    cfg.bot_sessions = grid[i].first;
    cfg.bot_amplification = grid[i].second;
    return run_poisoning_experiment(cfg);
  });
  bench::perf("PYTH-QOE-GRID", runner.last_report());

  bench::row("%6s %6s %8s | %10s %10s %8s", "bots", "amp", "rep-share",
             "qoe-before", "qoe-after", "flipped");
  double qoe_drop_at_40 = 0.0;
  double flipped_at_12_amp12 = 0.0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto [bots, amp] = grid[i];
    const PoisonResult& r = grid_results[i];
    if (bots == 12 && amp == 12) {
      // Off-grid probe point: feeds the claim below, not the table.
      flipped_at_12_amp12 = r.flipped_fraction;
      continue;
    }
    const PoisonConfig defaults;
    const double share =
        static_cast<double>(bots * amp) /
        static_cast<double>(bots * amp + defaults.legit_sessions);
    bench::row("%6zu %6zu %7.1f%% | %10.2f %10.2f %7.0f%%", bots, amp,
               share * 100.0, r.mean_qoe_before, r.mean_qoe_after,
               r.flipped_fraction * 100.0);
    if (bots == 40 && amp == 3) {
      qoe_drop_at_40 = r.mean_qoe_before - r.mean_qoe_after;
    }
  }

  bench::claim(qoe_drop_at_40 > 1.0,
               "17% lying clients (3x reports) cost the whole group >1.0 QoE");
  bench::claim(flipped_at_12_amp12 > 0.8,
               "amplification substitutes for bots: 5.7% of clients with 12x "
               "reports still flip the group");

  // Ablation: UCB discount factor (how fast honest history decays).
  bench::row("");
  bench::row("ablation: UCB discount (bots=40, amp=3)");
  const std::vector<double> discounts{0.90, 0.98, 0.999};
  const auto discount_results = runner.map(discounts.size(),
                                           [&](std::size_t i) {
    PoisonConfig cfg;
    cfg.bot_sessions = 40;
    cfg.engine.ucb.discount = discounts[i];
    return run_poisoning_experiment(cfg);
  });
  bench::perf("PYTH-QOE-DISCOUNT", runner.last_report());
  for (std::size_t i = 0; i < discounts.size(); ++i) {
    bench::row("  discount %.3f -> qoe-after %.2f, flipped %3.0f%%",
               discounts[i], discount_results[i].mean_qoe_after,
               discount_results[i].flipped_fraction * 100.0);
  }
  bench::note("slower forgetting (discount -> 1) makes poisoning slower but "
              "also makes the system sluggish to genuine QoE shifts.");

  // Ablation: group size at a fixed bot *count* (is the damage about
  // fractions or absolutes?).
  bench::row("ablation: group size with a fixed 40-bot botnet");
  const std::vector<std::size_t> group_sizes{100, 200, 400, 800};
  const auto size_results = runner.map(group_sizes.size(), [&](std::size_t i) {
    PoisonConfig cfg;
    cfg.legit_sessions = group_sizes[i];
    cfg.bot_sessions = 40;
    return run_poisoning_experiment(cfg);
  });
  bench::perf("PYTH-QOE-GROUPSIZE", runner.last_report());
  for (std::size_t i = 0; i < group_sizes.size(); ++i) {
    bench::row("  %4zu legit -> qoe-after %.2f, flipped %3.0f%%",
               group_sizes[i], size_results[i].mean_qoe_after,
               size_results[i].flipped_fraction * 100.0);
  }
  bench::note("bigger groups dilute a fixed botnet — but group membership is "
              "public (§4.1), so attackers simply target smaller groups.");

  // §4.1 MitM variant: no lying at all — the attacker genuinely degrades
  // a subset of members' traffic and the group decision does the rest.
  bench::row("");
  bench::row("MitM variant (honest reports, real drops on a member subset):");
  bench::row("%10s | %12s %12s %8s %10s", "victims", "qoe-before",
             "qoe-after", "flipped", "touched");
  const std::vector<double> victim_fractions{0.1, 0.3, 0.45, 0.6};
  const auto mitm_results =
      runner.map(victim_fractions.size(), [&](std::size_t i) {
        MitmQoeConfig mcfg;
        mcfg.victim_fraction = victim_fractions[i];
        return run_mitm_qoe_experiment(mcfg);
      });
  bench::perf("PYTH-QOE-MITM", runner.last_report());
  double collateral = 0.0;
  for (std::size_t i = 0; i < victim_fractions.size(); ++i) {
    const double f = victim_fractions[i];
    const MitmQoeResult& r = mitm_results[i];
    bench::row("%9.0f%% | %12.2f %12.2f %7.0f%% %9.1f%%", f * 100.0,
               r.untouched_before, r.untouched_after,
               r.flipped_fraction * 100.0, r.touched_share * 100.0);
    if (f == 0.45) collateral = r.untouched_before - r.untouched_after;
  }
  bench::claim(collateral > 1.0,
               "members whose traffic was never touched lose >1.0 QoE — the "
               "group decision is the damage amplifier");
  return 0;
}
