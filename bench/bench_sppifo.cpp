// SPPIFO — §3.2: "The proposed heuristic is based on the assumption
// that given a rank distribution, the order in which packet ranks arrive
// is random. An attacker could send packet sequences of particular
// ranks, resulting in packets being delayed or even dropped."
#include "bench_util.hpp"
#include "sppifo/attack.hpp"

using namespace intox;
using namespace intox::sppifo;

namespace {

SchedulingResult run(ArrivalOrder order, std::uint64_t seed) {
  RankWorkload w;
  w.order = order;
  w.packets = 40000;
  sim::Rng rng{seed};
  const auto ranks = generate_ranks(w, rng);
  return run_scheduling_experiment(ScheduleConfig{}, ranks);
}

void print(const char* label, const SchedulingResult& r) {
  bench::row("%-14s %10llu %10llu %10llu %12llu %10.2f", label,
             static_cast<unsigned long long>(r.sp_dequeue_inversions),
             static_cast<unsigned long long>(r.sp_push_downs),
             static_cast<unsigned long long>(r.sp_drops),
             static_cast<unsigned long long>(r.sp_high_priority_drops),
             r.mean_rank_error);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session session{argc, argv, "SPPIFO"};
  bench::header("SPPIFO", "SP-PIFO scheduling quality: random vs "
                          "adversarial rank order (same rank multiset)");

  bench::row("%-14s %10s %10s %10s %12s %10s", "order", "inversions",
             "push-downs", "drops", "hi-pri drops", "rank-err");
  const auto uniform = run(ArrivalOrder::kUniformRandom, 1);
  const auto drag = run(ArrivalOrder::kDragAndBurst, 1);
  const auto saw = run(ArrivalOrder::kSawtooth, 1);
  print("uniform", uniform);
  print("drag+burst", drag);
  print("sawtooth", saw);

  bench::claim(uniform.sp_high_priority_drops == 0,
               "under the design's random-order assumption, no "
               "high-priority packet is ever dropped");
  bench::claim(drag.sp_high_priority_drops > 20,
               "drag+burst forces drops of top-quartile (highest priority) "
               "packets");
  bench::claim(saw.sp_push_downs > 3 * uniform.sp_push_downs,
               "sawtooth keeps the queue bounds permanently mis-calibrated "
               "(push-down storm)");
  bench::claim(drag.mean_rank_error > 3.0 * uniform.mean_rank_error,
               "scheduling order diverges several-fold further from the "
               "ideal PIFO under attack");
  bench::claim(uniform.pifo_high_priority_drops == 0 &&
                   drag.pifo_high_priority_drops == 0,
               "the ideal PIFO reference never drops high-priority packets "
               "under either order");

  // Ablation: number of strict-priority queues.
  bench::row("");
  bench::row("ablation: queue count (drag+burst)");
  for (std::size_t queues : {2u, 4u, 8u, 16u, 32u}) {
    RankWorkload w;
    w.order = ArrivalOrder::kDragAndBurst;
    w.packets = 40000;
    sim::Rng rng{3};
    const auto ranks = generate_ranks(w, rng);
    ScheduleConfig cfg;
    cfg.sp.queues = queues;
    cfg.sp.per_queue_capacity = 128 / queues;  // fixed total buffer
    const auto r = run_scheduling_experiment(cfg, ranks);
    bench::row("  %2zu queues: rank-err %6.2f, hi-pri drops %llu", queues,
               r.mean_rank_error,
               static_cast<unsigned long long>(r.sp_high_priority_drops));
  }
  bench::note("more queues approximate PIFO better in the benign case but "
              "the adversarial order still defeats the adaptation.");
  return 0;
}
