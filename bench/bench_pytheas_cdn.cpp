// PYTH-CDN — §4.1: "throttle user flows to/from a particular CDN site,
// while prioritizing traffic to others. This way, the attacker can
// create imbalance and potentially overload one site as entire groups of
// clients switch to it."
#include "bench_util.hpp"
#include "pytheas/experiment.hpp"

using namespace intox;
using namespace intox::pytheas;

namespace {

CdnConfig scenario() {
  CdnConfig cfg;
  cfg.model.arm_base = {4.5, 4.0};          // site 0 better and bigger
  cfg.model.arm_capacity = {400.0, 200.0};  // site 1 cannot hold everyone
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session session{argc, argv, "PYTH-CDN"};
  bench::header("PYTH-CDN", "CDN-site overload via MitM throttling");

  auto clean_cfg = scenario();
  clean_cfg.attack_start_epoch = clean_cfg.epochs + 1;
  const auto clean = run_cdn_experiment(clean_cfg);
  const auto attacked = run_cdn_experiment(scenario());

  bench::row("%18s  %12s  %12s", "", "no attack", "throttled");
  bench::row("%18s  %12.2f  %12.2f", "final site-0 load",
             clean.site0_load.points().back().second,
             attacked.site0_load.points().back().second);
  bench::row("%18s  %12.2f  %12.2f", "final site-1 load",
             clean.site1_load.points().back().second,
             attacked.site1_load.points().back().second);
  bench::row("%18s  %12.2f  %12.2f", "site-1 peak load/cap",
             clean.site1_peak_overload, attacked.site1_peak_overload);
  bench::row("%18s  %12.2f  %12.2f", "mean QoE (late)", clean.qoe_after,
             attacked.qoe_after);

  bench::row("");
  bench::row("site loads over time (attacked run; attack starts at epoch 50):");
  bench::row("%8s  %8s  %8s  %8s", "epoch", "site0", "site1", "QoE");
  for (int e = 0; e <= 140; e += 20) {
    bench::row("%8d  %8.0f  %8.0f  %8.2f", e,
               attacked.site0_load.at(sim::seconds(e)),
               attacked.site1_load.at(sim::seconds(e)),
               attacked.mean_qoe.at(sim::seconds(e)));
  }

  bench::claim(clean.site1_peak_overload < 1.0,
               "without the attacker, the small site is never overloaded");
  bench::claim(attacked.site1_peak_overload > 1.2,
               "throttling the big site stampedes the group onto the small "
               "one, overloading it past capacity");
  bench::claim(attacked.qoe_after < clean.qoe_after - 0.15,
               "every client's QoE degrades even though site 1 was never "
               "touched by the attacker");
  bench::note("the attacker throttles only site-0 traffic; the overload at "
              "site 1 is manufactured entirely by Pytheas's group decision.");
  return 0;
}
